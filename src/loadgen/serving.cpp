#include "loadgen/serving.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <memory>
#include <vector>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "des/engine.hpp"
#include "diet/client.hpp"
#include "diet/deployment.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "naming/registry.hpp"
#include "net/simenv.hpp"
#include "obs/journal.hpp"

namespace gc::loadgen {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof v);
}

std::uint64_t fnv_f64(std::uint64_t h, double v) {
  return fnv_u64(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t fnv_str(std::uint64_t h, const std::string& s) {
  return fnv1a(h, s.data(), s.size());
}

/// The deterministic scalar input of client c's seq-th request.
std::int64_t input_value(int client, int seq) {
  return (static_cast<std::int64_t>(client) << 20) | seq;
}

diet::ProfileDesc scalar_desc(const std::string& service) {
  diet::ProfileDesc desc(service, 0, 0, 1);
  desc.arg(0).type = diet::DataType::kScalar;
  desc.arg(0).base = diet::BaseType::kLongInt;
  desc.arg(1).type = diet::DataType::kScalar;
  desc.arg(1).base = diet::BaseType::kLongInt;
  return desc;
}

diet::ProfileDesc store_desc() {
  diet::ProfileDesc desc("store", 0, 0, 1);
  desc.arg(0).type = diet::DataType::kVector;
  desc.arg(0).base = diet::BaseType::kDouble;
  desc.arg(1).type = diet::DataType::kScalar;
  desc.arg(1).base = diet::BaseType::kLongInt;
  return desc;
}

/// All serving services output one int64 so the digest hashes uniformly:
///   work : in * 2 + 1
///   rareK: in * 3 + K
///   store: llround(sum of the shipped vector)
void register_scalar_service(diet::ServiceTable& services,
                             const std::string& name, std::int64_t mult,
                             std::int64_t add, double modeled_seconds) {
  diet::SolveFn solve = [mult, add, modeled_seconds](diet::ServiceContext& ctx) {
    ctx.compute(
        modeled_seconds,
        [&ctx, mult, add]() {
          const auto in = ctx.profile().arg(0).get_scalar<std::int64_t>();
          if (!in.is_ok()) return 1;
          ctx.profile().arg(1).set_scalar<std::int64_t>(
              in.value() * mult + add, diet::BaseType::kLongInt,
              diet::Persistence::kVolatile);
          return 0;
        },
        [&ctx](int rc) { ctx.finish(rc); });
  };
  GC_CHECK(services.add(scalar_desc(name), std::move(solve)).is_ok());
}

void register_store_service(diet::ServiceTable& services,
                            double modeled_seconds) {
  diet::SolveFn solve = [modeled_seconds](diet::ServiceContext& ctx) {
    ctx.compute(
        modeled_seconds,
        [&ctx]() {
          const auto in = ctx.profile().arg(0).get_vector<double>();
          if (!in.is_ok()) return 1;
          double sum = 0.0;
          for (const double v : in.value()) sum += v;
          ctx.profile().arg(1).set_scalar<std::int64_t>(
              static_cast<std::int64_t>(std::llround(sum)),
              diet::BaseType::kLongInt, diet::Persistence::kVolatile);
          return 0;
        },
        [&ctx](int rc) { ctx.finish(rc); });
  };
  GC_CHECK(services.add(store_desc(), std::move(solve)).is_ok());
}

diet::Profile make_request(const RequestProfile& profile, int client,
                           int seq) {
  diet::Profile request(profile.service, 0, 0, 1);
  if (profile.service == "store") {
    const std::size_t n = std::max<std::size_t>(1, profile.in_bytes / 8);
    std::vector<double> data(n, 1.0 + 0.5 * ((client % 97) + seq));
    GC_CHECK(request.arg(0)
                 .set_vector<double>(data, diet::BaseType::kDouble,
                                     profile.persistent
                                         ? diet::Persistence::kPersistent
                                         : diet::Persistence::kVolatile)
                 .is_ok());
    request.arg(0).set_data_id(request.arg(0).content_id());
  } else {
    request.arg(0).set_scalar<std::int64_t>(
        input_value(client, seq), diet::BaseType::kLongInt,
        profile.persistent ? diet::Persistence::kPersistent
                           : diet::Persistence::kVolatile);
  }
  request.arg(1).desc.type = diet::DataType::kScalar;
  request.arg(1).desc.base = diet::BaseType::kLongInt;
  return request;
}

}  // namespace

std::vector<RequestProfile> default_mix() {
  std::vector<RequestProfile> mix;
  mix.push_back({"work", 8, 90.0, false});
  mix.push_back({"store", 64 * 1024, 4.0, true});
  for (int k = 0; k < 4; ++k) {
    mix.push_back({strformat("rare%d", k), 8, 1.5, false});
  }
  return mix;
}

ServingReport run_serving(const ServingConfig& config) {
  const auto wall_start = std::chrono::steady_clock::now();
  GC_CHECK_MSG(config.mas >= 1 && config.mas <= config.topology.pods,
               "mas must be in [1, pods]");
  const auto plan_status = fault::parse_plan(config.fault_plan);
  GC_CHECK_MSG(plan_status.is_ok(), plan_status.status().to_string());
  const fault::FaultPlan plan = plan_status.value();

  LoadSpec load = config.load;
  if (load.profiles.empty()) load.profiles = default_mix();

  platform::GeneratedPlatform fabric = platform::make_fattree(config.topology);
  const int pods = config.topology.pods;
  const auto shard_of_pod = [&](int pod) { return pod * config.mas / pods; };

  des::Engine engine;
  engine.set_tie_break_seed(config.tie_seed);
  net::SimEnv env(engine, fabric.platform);
  if (config.contention) env.enable_contention();
  naming::Registry registry;

  std::unique_ptr<fault::Injector> injector;
  if (plan.active) {
    injector = std::make_unique<fault::Injector>(plan, config.fault_seed);
    env.set_fault_hook(injector.get());
  }

  obs::Journal& journal = obs::Journal::instance();
  journal.clear();
  journal.set_enabled(config.journal);

  // Per-shard service tables: work/store everywhere, rareK only on shard
  // K mod mas — those are the requests that must cross the federation.
  std::vector<std::unique_ptr<diet::ServiceTable>> tables;
  std::vector<diet::ServiceTable*> table_ptrs;
  for (int s = 0; s < config.mas; ++s) {
    auto table = std::make_unique<diet::ServiceTable>();
    register_scalar_service(*table, "work", 2, 1, config.work_seconds);
    register_store_service(*table, config.work_seconds);
    for (int k = 0; k < 4; ++k) {
      if (k % config.mas == s) {
        register_scalar_service(*table, strformat("rare%d", k), 3, k,
                                config.work_seconds);
      }
    }
    table_ptrs.push_back(table.get());
    tables.push_back(std::move(table));
  }

  // Shard specs: contiguous pod blocks, the shard's MA on its first pod's
  // control node. SED nodes are collected shard-major so flat federation
  // indexes (fault schedules) map back to nodes.
  std::vector<diet::DeploymentSpec> shards(
      static_cast<std::size_t>(config.mas));
  std::vector<net::NodeId> sed_nodes_flat;
  for (int s = 0; s < config.mas; ++s) {
    diet::DeploymentSpec& spec = shards[static_cast<std::size_t>(s)];
    spec.ma_name = strformat("MA%d", s + 1);
    spec.policy = config.policy;
    spec.agent_tuning.peer_ttl = config.peer_ttl;
    spec.agent_tuning.peer_top_k = config.peer_top_k;
    spec.agent_tuning.federate_always = config.federate_always;
    spec.agent_tuning.collect_timeout = config.collect_timeout_s;
    // Strike eviction piggybacks on collect timeouts; with a timeout this
    // long a strike means a genuinely dead subtree, so one is enough.
    spec.agent_tuning.max_child_timeouts = 1;
    spec.seed = load.seed ^ (0xace1ULL + static_cast<std::uint64_t>(s));
    bool ma_placed = false;
    for (const auto& cluster : fabric.clusters) {
      if (shard_of_pod(cluster.pod) != s) continue;
      if (!ma_placed) {
        spec.ma_node = fabric.ma_nodes[static_cast<std::size_t>(cluster.pod)];
        ma_placed = true;
      }
      diet::DeploymentSpec::LaSpec la;
      la.name = strformat("LA-p%02d-c%02llu", cluster.pod,
                          static_cast<unsigned long long>(cluster.cluster));
      la.node = cluster.la_node;
      for (std::size_t i = 0; i < cluster.sed_nodes.size(); ++i) {
        diet::DeploymentSpec::SedSpec sed;
        sed.name = strformat(
            "SeD-p%02d-c%02llu-%02zu", cluster.pod,
            static_cast<unsigned long long>(cluster.cluster), i);
        sed.node = cluster.sed_nodes[i];
        sed.machines = config.topology.machines_per_sed;
        la.sed_indexes.push_back(static_cast<int>(spec.seds.size()));
        spec.seds.push_back(sed);
        sed_nodes_flat.push_back(sed.node);
      }
      spec.las.push_back(std::move(la));
    }
    GC_CHECK_MSG(ma_placed, "a shard ended up with no pods");
  }

  diet::Federation federation(env, registry, table_ptrs, std::move(shards));

  // Clients: client c lives on pod (c mod pods)'s frontal and talks to
  // that pod's shard MA. id_base (c+1)<<32 keeps call ids disjoint.
  diet::Client::Tuning client_tuning;
  if (plan.active) {
    client_tuning.max_attempts = plan.max_attempts;
    client_tuning.attempt_timeout_s = plan.attempt_timeout_s;
    client_tuning.backoff_base_s = plan.backoff_base_s;
    client_tuning.backoff_mult = plan.backoff_mult;
  }
  std::vector<std::unique_ptr<diet::Client>> clients;
  clients.reserve(static_cast<std::size_t>(load.clients));
  for (int c = 0; c < load.clients; ++c) {
    const int pod = c % pods;
    auto client = std::make_unique<diet::Client>(
        strformat("client-%05d", c), client_tuning,
        static_cast<std::uint64_t>(c + 1) << 32);
    env.attach(*client, fabric.client_nodes[static_cast<std::size_t>(pod)]);
    client->connect(
        federation.ma(static_cast<std::size_t>(shard_of_pod(pod)))
            .endpoint());
    clients.push_back(std::move(client));
  }

  // Let registration (and the peer announces) settle.
  engine.run_until(engine.now() + 2.0);

  const std::vector<Arrival> arrivals =
      plan_arrivals(load, engine.now() + 1.0);
  if (!config.trace_out.empty()) {
    const gc::Status st = write_trace(config.trace_out, arrivals);
    GC_CHECK_MSG(st.is_ok(), st.to_string());
  }

  // The plan's process-fault schedule, mapped through the federation's
  // flat SED/LA indexes (shard-major, like a single deployment's).
  if (plan.active) {
    const auto schedule = fault::materialize(
        plan, static_cast<int>(federation.sed_count()),
        static_cast<int>(federation.la_count()), config.fault_seed);
    for (const fault::ProcessFault& f : schedule) {
      const double delay = std::max(0.0, f.at_s - engine.now());
      const auto index = static_cast<std::size_t>(f.index);
      switch (f.kind) {
        case fault::ProcessFault::Kind::kSedCrash:
          env.post_after(delay, [&federation, index]() {
            federation.sed(index).fail();
          });
          break;
        case fault::ProcessFault::Kind::kSedRestart:
          env.post_after(delay, [&federation, index]() {
            federation.sed(index).restart();
          });
          break;
        case fault::ProcessFault::Kind::kLaDeath:
          env.post_after(delay, [&federation, index]() {
            federation.la(index).fail();
          });
          break;
        case fault::ProcessFault::Kind::kSedIsolate: {
          const net::NodeId node = sed_nodes_flat.at(index);
          env.post_after(delay, [&injector, node]() {
            injector->isolate(node);
          });
          break;
        }
        case fault::ProcessFault::Kind::kSedHeal: {
          const net::NodeId node = sed_nodes_flat.at(index);
          env.post_after(delay,
                         [&injector, node]() { injector->heal(node); });
          break;
        }
      }
    }
  }

  ServingReport report;
  report.sed_count = federation.sed_count();
  report.arrivals = arrivals.size();

  // Schedule the open-loop plan. The done callback folds the science
  // digest: XOR of per-call hashes, so completion order cannot matter.
  for (const Arrival& a : arrivals) {
    GC_CHECK(a.client >= 0 && a.client < load.clients);
    GC_CHECK(a.profile >= 0 &&
             static_cast<std::size_t>(a.profile) < load.profiles.size());
    diet::Client* client = clients[static_cast<std::size_t>(a.client)].get();
    const RequestProfile& profile =
        load.profiles[static_cast<std::size_t>(a.profile)];
    const double delay = std::max(0.0, a.at_s - engine.now());
    env.post_after_as(
        client->endpoint(), delay,
        [&report, client, &profile, a, deadline = config.call_deadline_s]() {
          client->call_async(
              make_request(profile, a.client, a.seq),
              [&report](const gc::Status& status, diet::Profile& result) {
                ++report.completed;
                std::uint64_t h = kFnvOffset;
                h = fnv_str(h, result.path());
                h = fnv_u64(h, status.is_ok() ? 1 : 0);
                if (status.is_ok()) {
                  ++report.ok;
                  const auto out =
                      result.arg(1).get_scalar<std::int64_t>();
                  h = fnv_u64(h, out.is_ok()
                                     ? static_cast<std::uint64_t>(out.value())
                                     : 0xdeadULL);
                } else {
                  ++report.failed;
                }
                report.science_digest ^= h;
              },
              deadline);
        });
  }

  engine.run();

  // Aggregate: latencies and the state hash from the clients' records
  // (client index order, so the hash is schedule-independent), quantiles
  // from the journal when it is on.
  double first_submit = -1.0;
  double last_complete = -1.0;
  std::vector<double> latencies;
  latencies.reserve(report.ok);
  std::uint64_t state = kFnvOffset;
  std::uint64_t call_digest = 0;
  for (const auto& client : clients) {
    for (const auto& rec : client->records()) {
      state = fnv_u64(state, rec.id);
      state = fnv_str(state, rec.service);
      state = fnv_f64(state, rec.submitted);
      state = fnv_f64(state, rec.found);
      state = fnv_f64(state, rec.started);
      state = fnv_f64(state, rec.completed);
      state = fnv_u64(state, rec.sed_uid);
      state = fnv_u64(state, rec.ok ? 1 : 0);
      std::uint64_t h = kFnvOffset;
      h = fnv_u64(h, rec.id);
      h = fnv_str(h, rec.service);
      h = fnv_u64(h, rec.ok ? 1 : 0);
      call_digest ^= h;
      if (first_submit < 0.0 || rec.submitted < first_submit) {
        first_submit = rec.submitted;
      }
      if (rec.ok) {
        last_complete = std::max(last_complete, rec.completed);
        latencies.push_back(rec.total_time());
      }
    }
  }
  // Fold the call-level view in too, so a digest collision would need to
  // fool both the result values and the completion statuses.
  report.science_digest ^= call_digest;

  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto q = [&](double p) {
      const auto i = static_cast<std::size_t>(
          p * static_cast<double>(latencies.size() - 1));
      return latencies[i];
    };
    report.p50_s = q(0.50);
    report.p99_s = q(0.99);
  }
  if (first_submit >= 0.0 && last_complete > first_submit) {
    report.makespan_s = last_complete - first_submit;
    report.requests_per_sec =
        static_cast<double>(report.ok) / report.makespan_s;
  }
  report.state_hash = state;
  report.events = engine.events_executed();
  for (std::size_t s = 0; s < federation.shard_count(); ++s) {
    const diet::Agent::PeerStats& stats = federation.ma(s).peer_stats();
    report.peer.forwards += stats.forwards;
    report.peer.replies += stats.replies;
    report.peer.dup_drops += stats.dup_drops;
    report.peer.loop_drops += stats.loop_drops;
    report.peer.evictions += stats.evictions;
    report.peer.candidates_returned += stats.candidates_returned;
  }
  if (config.journal) {
    report.journal_jsonl = journal.to_jsonl();
  }
  journal.set_enabled(false);
  report.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  return report;
}

}  // namespace gc::loadgen
