#include "loadgen/loadgen.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace gc::loadgen {

namespace {

/// SplitMix64 finalizer: decorrelates per-client streams drawn from one
/// spec seed, so client k's arrivals do not shadow client k+1's.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

int draw_profile(const std::vector<RequestProfile>& profiles, double total,
                 Rng& rng) {
  double x = rng.uniform() * total;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    x -= profiles[i].weight;
    if (x < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(profiles.size()) - 1;
}

void canonical_sort(std::vector<Arrival>* plan) {
  std::sort(plan->begin(), plan->end(),
            [](const Arrival& a, const Arrival& b) {
              if (a.at_s != b.at_s) return a.at_s < b.at_s;
              if (a.client != b.client) return a.client < b.client;
              return a.seq < b.seq;
            });
}

}  // namespace

std::vector<Arrival> plan_poisson(const LoadSpec& spec, double start_s) {
  GC_CHECK_MSG(spec.clients > 0 && spec.requests_per_client > 0,
               "empty load plan");
  GC_CHECK_MSG(spec.arrival_rate_hz > 0.0, "arrival rate must be positive");
  GC_CHECK_MSG(!spec.profiles.empty(), "load plan needs a profile mix");
  double total_weight = 0.0;
  for (const auto& profile : spec.profiles) {
    GC_CHECK_MSG(profile.weight > 0.0, "profile weights must be positive");
    total_weight += profile.weight;
  }
  // Per-client thinning of the aggregate rate: N independent exponential
  // streams of rate r/N superpose to Poisson(r).
  const double mean_gap =
      static_cast<double>(spec.clients) / spec.arrival_rate_hz;
  std::vector<Arrival> plan;
  plan.reserve(static_cast<std::size_t>(spec.clients) *
               static_cast<std::size_t>(spec.requests_per_client));
  for (int client = 0; client < spec.clients; ++client) {
    Rng rng(spec.seed ^ mix(static_cast<std::uint64_t>(client) + 1));
    double t = start_s;
    for (int seq = 0; seq < spec.requests_per_client; ++seq) {
      t += rng.exponential(mean_gap);
      Arrival arrival;
      arrival.client = client;
      arrival.seq = seq;
      arrival.at_s = t;
      arrival.profile = draw_profile(spec.profiles, total_weight, rng);
      plan.push_back(arrival);
    }
  }
  canonical_sort(&plan);
  return plan;
}

gc::Status write_trace(const std::string& path,
                       const std::vector<Arrival>& plan) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return make_error(ErrorCode::kIoError, "cannot write trace: " + path);
  }
  std::fprintf(f, "# gridcosmo loadgen trace v1: client seq at_s profile\n");
  for (const auto& a : plan) {
    std::fprintf(f, "%d %d %.17g %d\n", a.client, a.seq, a.at_s, a.profile);
  }
  std::fclose(f);
  return gc::Status::ok();
}

gc::Status read_trace(const std::string& path, std::vector<Arrival>* plan) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return make_error(ErrorCode::kNotFound, "cannot read trace: " + path);
  }
  plan->clear();
  char line[256];
  int lineno = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    ++lineno;
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '#' || *p == '\n' || *p == '\0') continue;
    Arrival a;
    if (std::sscanf(p, "%d %d %lg %d", &a.client, &a.seq, &a.at_s,
                    &a.profile) != 4) {
      std::fclose(f);
      return make_error(ErrorCode::kInvalidArgument,
                        strformat("%s:%d: bad trace line", path.c_str(),
                                  lineno));
    }
    plan->push_back(a);
  }
  std::fclose(f);
  canonical_sort(plan);
  return gc::Status::ok();
}

std::vector<Arrival> plan_arrivals(const LoadSpec& spec, double start_s) {
  if (!spec.trace_path.empty()) {
    std::vector<Arrival> plan;
    const gc::Status st = read_trace(spec.trace_path, &plan);
    GC_CHECK_MSG(st.is_ok(), st.to_string());
    return plan;
  }
  return plan_poisson(spec, start_s);
}

}  // namespace gc::loadgen
