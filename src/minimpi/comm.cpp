#include "minimpi/comm.hpp"

// gclint: allow-file(thread) MiniMPI models MPI ranks as real threads; it
// hosts solver code and never touches the DES sim path.

#include <thread>

namespace gc::minimpi {

namespace detail {

struct World {
  explicit World(int nranks) : size(nranks), mailboxes(nranks) {}

  struct Message {
    int source;
    int tag;
    Bytes data;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  int size;
  std::vector<Mailbox> mailboxes;

  // Sense-reversing barrier.
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_count = 0;
  std::uint64_t barrier_generation = 0;
};

}  // namespace detail

void Comm::send(int dest, int tag, const Bytes& data) {
  GC_CHECK(dest >= 0 && dest < size_);
  auto& box = world_->mailboxes[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(detail::World::Message{rank_, tag, data});
  }
  box.cv.notify_all();
}

Bytes Comm::recv(int source, int tag) {
  auto& box = world_->mailboxes[static_cast<std::size_t>(rank_)];
  std::unique_lock<std::mutex> lock(box.mutex);
  while (true) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if ((source == kAnySource || it->source == source) && it->tag == tag) {
        Bytes data = std::move(it->data);
        box.queue.erase(it);
        return data;
      }
    }
    box.cv.wait(lock);
  }
}

void Comm::barrier() {
  std::unique_lock<std::mutex> lock(world_->barrier_mutex);
  const std::uint64_t generation = world_->barrier_generation;
  if (++world_->barrier_count == world_->size) {
    world_->barrier_count = 0;
    ++world_->barrier_generation;
    world_->barrier_cv.notify_all();
    return;
  }
  world_->barrier_cv.wait(lock, [this, generation] {
    return world_->barrier_generation != generation;
  });
}

void run(int nranks, const std::function<void(Comm&)>& fn) {
  GC_CHECK(nranks >= 1);
  detail::World world(nranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &fn, r, nranks]() {
      Comm comm(world, r, nranks);
      fn(comm);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace gc::minimpi
