// MiniMPI: a rank-based message-passing runtime over std::thread.
//
// The paper's solve function "will manage the MPI environment required by
// RAMSES" (Section 4.2). This module provides that environment in-process:
// the same explicit message-passing model as MPI (LLNL tutorial idioms —
// blocking pt2pt, collectives, communicator-scoped ranks) with threads
// standing in for processes. The RAMSES solver and its domain
// decomposition are written against Comm exactly as they would be against
// MPI_Comm.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/log.hpp"

namespace gc::minimpi {

using Bytes = std::vector<std::uint8_t>;

namespace detail {
struct World;
}  // namespace detail

class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  /// Blocking standard-mode send (buffered: never deadlocks on itself).
  void send(int dest, int tag, const Bytes& data);

  /// Blocking receive matching (source, tag). kAnySource = -1 accepted.
  Bytes recv(int source, int tag);
  static constexpr int kAnySource = -1;

  // Typed convenience wrappers (POD element types).
  template <typename T>
  void send_vec(int dest, int tag, const std::vector<T>& values) {
    Bytes b(values.size() * sizeof(T));
    if (!values.empty()) std::memcpy(b.data(), values.data(), b.size());
    send(dest, tag, b);
  }

  template <typename T>
  std::vector<T> recv_vec(int source, int tag) {
    const Bytes b = recv(source, tag);
    GC_CHECK(b.size() % sizeof(T) == 0);
    std::vector<T> out(b.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), b.data(), b.size());
    return out;
  }

  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    send_vec<T>(dest, tag, {value});
  }

  template <typename T>
  T recv_value(int source, int tag) {
    auto v = recv_vec<T>(source, tag);
    GC_CHECK(v.size() == 1);
    return v[0];
  }

  // --- collectives (all ranks must participate) ---
  void barrier();

  template <typename T>
  void bcast(std::vector<T>& values, int root) {
    if (rank_ == root) {
      for (int r = 0; r < size_; ++r) {
        if (r != root) send_vec<T>(r, kTagBcast, values);
      }
    } else {
      values = recv_vec<T>(root, kTagBcast);
    }
  }

  template <typename T, typename Op>
  T reduce(const T& value, int root, Op op) {
    if (rank_ == root) {
      T acc = value;
      for (int r = 0; r < size_; ++r) {
        if (r != root) acc = op(acc, recv_value<T>(r, kTagReduce));
      }
      return acc;
    }
    send_value<T>(root, kTagReduce, value);
    return T{};
  }

  template <typename T, typename Op>
  T allreduce(const T& value, Op op) {
    T result = reduce<T>(value, 0, op);
    std::vector<T> box = {result};
    bcast(box, 0);
    return box[0];
  }

  template <typename T>
  T allreduce_sum(const T& value) {
    return allreduce<T>(value, [](T a, T b) { return a + b; });
  }
  template <typename T>
  T allreduce_max(const T& value) {
    return allreduce<T>(value, [](T a, T b) { return a > b ? a : b; });
  }
  template <typename T>
  T allreduce_min(const T& value) {
    return allreduce<T>(value, [](T a, T b) { return a < b ? a : b; });
  }

  /// Gathers per-rank vectors to root (concatenated in rank order).
  template <typename T>
  std::vector<T> gather(const std::vector<T>& mine, int root) {
    if (rank_ == root) {
      std::vector<T> all;
      for (int r = 0; r < size_; ++r) {
        std::vector<T> part =
            r == root ? mine : recv_vec<T>(r, kTagGather);
        all.insert(all.end(), part.begin(), part.end());
      }
      return all;
    }
    send_vec<T>(root, kTagGather, mine);
    return {};
  }

  template <typename T>
  std::vector<T> allgather(const std::vector<T>& mine) {
    std::vector<T> all = gather(mine, 0);
    bcast(all, 0);
    return all;
  }

  /// Element-wise sum-reduction of equal-length vectors across all ranks;
  /// every rank ends with the total (the PM solver reduces its density
  /// mesh this way).
  template <typename T>
  void allreduce_vec_sum(std::vector<T>& values) {
    if (rank_ == 0) {
      for (int r = 1; r < size_; ++r) {
        const std::vector<T> part = recv_vec<T>(r, kTagReduce);
        GC_CHECK(part.size() == values.size());
        for (std::size_t i = 0; i < values.size(); ++i) values[i] += part[i];
      }
    } else {
      send_vec<T>(0, kTagReduce, values);
    }
    bcast(values, 0);
  }

  /// All-to-all personalized exchange: outgoing[r] goes to rank r; returns
  /// incoming[r] from each rank r.
  template <typename T>
  std::vector<std::vector<T>> alltoall(
      const std::vector<std::vector<T>>& outgoing) {
    GC_CHECK(static_cast<int>(outgoing.size()) == size_);
    std::vector<std::vector<T>> incoming(static_cast<std::size_t>(size_));
    for (int r = 0; r < size_; ++r) {
      if (r == rank_) {
        incoming[static_cast<std::size_t>(r)] =
            outgoing[static_cast<std::size_t>(r)];
      } else {
        send_vec<T>(r, kTagAlltoall, outgoing[static_cast<std::size_t>(r)]);
      }
    }
    for (int r = 0; r < size_; ++r) {
      if (r != rank_) {
        incoming[static_cast<std::size_t>(r)] =
            recv_vec<T>(r, kTagAlltoall);
      }
    }
    return incoming;
  }

 private:
  friend void run(int, const std::function<void(Comm&)>&);
  Comm(detail::World& world, int rank, int size)
      : world_(&world), rank_(rank), size_(size) {}

  static constexpr int kTagBcast = -101;
  static constexpr int kTagReduce = -102;
  static constexpr int kTagGather = -103;
  static constexpr int kTagAlltoall = -104;

  detail::World* world_;
  int rank_;
  int size_;
};

/// Spawns `nranks` threads, each running fn with its Comm; joins all.
/// Any GC_CHECK failure aborts the process (like an MPI error).
void run(int nranks, const std::function<void(Comm&)>& fn);

}  // namespace gc::minimpi
