// DIET problem profiles.
//
// A ProfileDesc is the service's signature: a path (service name) plus the
// last_in / last_inout / last_out markers and per-argument descriptors —
// exactly the diet_profile_desc_t of Section 4.2.1. A Profile is a call
// instance: the same shape plus argument values. Clients and servers must
// use the same problem description for a request to match (Section 4.2.1).
#pragma once

#include <string>
#include <vector>

#include "diet/data.hpp"

namespace gc::diet {

class ProfileDesc {
 public:
  ProfileDesc() = default;

  /// `last_in`, `last_inout`, `last_out` follow DIET's convention: indexes
  /// of the last argument of each direction; -1 when a direction is empty;
  /// they must be non-decreasing and last_out + 1 is the argument count.
  ProfileDesc(std::string path, int last_in, int last_inout, int last_out);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] int last_in() const { return last_in_; }
  [[nodiscard]] int last_inout() const { return last_inout_; }
  [[nodiscard]] int last_out() const { return last_out_; }
  [[nodiscard]] int arg_count() const { return last_out_ + 1; }

  [[nodiscard]] Direction direction(int index) const {
    GC_CHECK(index >= 0 && index < arg_count());
    if (index <= last_in_) return Direction::kIn;
    if (index <= last_inout_) return Direction::kInOut;
    return Direction::kOut;
  }

  [[nodiscard]] ArgDesc& arg(int index) {
    GC_CHECK(index >= 0 && index < arg_count());
    return args_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] const ArgDesc& arg(int index) const {
    GC_CHECK(index >= 0 && index < arg_count());
    return args_[static_cast<std::size_t>(index)];
  }

  /// Validates the marker invariants (-1 <= last_in <= last_inout <=
  /// last_out, last_out >= 0 handled as empty profile when -1).
  [[nodiscard]] bool valid() const;

  /// Service-matching: same path, same markers, compatible arg types.
  [[nodiscard]] bool matches(const ProfileDesc& other) const;

  void serialize(net::Writer& w) const;
  static ProfileDesc deserialize(net::Reader& r);

 private:
  std::string path_;
  int last_in_ = -1;
  int last_inout_ = -1;
  int last_out_ = -1;
  std::vector<ArgDesc> args_;
};

class Profile {
 public:
  Profile() = default;

  /// Allocates all argument slots (diet_profile_alloc: "no allocation
  /// function is required, since diet_profile_alloc allocates all
  /// necessary memory for all argument descriptions", Section 4.3.2).
  Profile(std::string path, int last_in, int last_inout, int last_out);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] int last_in() const { return last_in_; }
  [[nodiscard]] int last_inout() const { return last_inout_; }
  [[nodiscard]] int last_out() const { return last_out_; }
  [[nodiscard]] int arg_count() const { return last_out_ + 1; }

  [[nodiscard]] Direction direction(int index) const;

  [[nodiscard]] ArgValue& arg(int index) {
    GC_CHECK(index >= 0 && index < arg_count());
    return args_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] const ArgValue& arg(int index) const {
    GC_CHECK(index >= 0 && index < arg_count());
    return args_[static_cast<std::size_t>(index)];
  }

  /// The descriptor view of this call (for submission and matching).
  [[nodiscard]] ProfileDesc desc() const;

  /// True when every IN/INOUT argument has a value.
  [[nodiscard]] bool inputs_complete() const;

  /// Wire volume of the request (IN + INOUT values).
  [[nodiscard]] std::int64_t in_bytes() const;
  /// Wire volume of the response (INOUT + OUT values).
  [[nodiscard]] std::int64_t out_bytes() const;

  /// File-argument bulk of the request / response. These bytes are not in
  /// the serialized payload (files travel out-of-band); the transport
  /// charges them via Envelope::modeled_extra_bytes.
  [[nodiscard]] std::int64_t in_file_bytes() const;
  [[nodiscard]] std::int64_t out_file_bytes() const;

  /// Serializes IN + INOUT argument values (client -> SED).
  void serialize_inputs(net::Writer& w) const;
  /// Rebuilds a callee-side profile from a request.
  static Profile deserialize_inputs(const std::string& path, int last_in,
                                    int last_inout, int last_out,
                                    net::Reader& r);

  /// Serializes INOUT + OUT argument values (SED -> client).
  void serialize_outputs(net::Writer& w) const;
  /// Merges INOUT + OUT values back into the caller's profile
  /// (Section 4.2.1's "brought back" semantics).
  void merge_outputs(net::Reader& r);

 private:
  std::string path_;
  int last_in_ = -1;
  int last_inout_ = -1;
  int last_out_ = -1;
  std::vector<ArgValue> args_;
};

}  // namespace gc::diet
