#include "diet/sed.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace gc::diet {

namespace {

/// ServiceContext bound to one running job on one SED.
class SedContext final : public ServiceContext {
 public:
  SedContext(Sed& sed, Sed::PendingJob job, SimTime started)
      : sed_(sed), job_(std::move(job)), started_(started) {}

  Profile& profile() override { return job_.profile; }
  net::Env& env() override { return *sed_.env(); }
  double host_power() const override { return sed_.host_power(); }
  int machines() const override { return sed_.machines(); }
  const std::string& sed_name() const override { return sed_.name(); }
  const std::string& work_dir() const override { return work_dir_; }
  Rng& rng() override { return rng_; }

  void compute(double modeled_seconds, std::function<int()> work,
               std::function<void(int)> then) override {
    sed_.env()->execute(sed_.node(), modeled_seconds, std::move(work),
                        std::move(then));
  }

  void finish(int solve_status) override {
    GC_CHECK_MSG(!finished_, "ServiceContext::finish called twice");
    finished_ = true;
    sed_.complete_job(job_, started_, solve_status);
  }

  [[nodiscard]] bool finished() const { return finished_; }

 private:
  friend class gc::diet::Sed;
  Sed& sed_;
  Sed::PendingJob job_;
  SimTime started_;
  std::string work_dir_;
  Rng rng_{0};
  bool finished_ = false;
};

}  // namespace

Sed::Sed(std::uint64_t uid, std::string name, ServiceTable& services,
         double host_power, int machines, SedTuning tuning,
         std::uint64_t seed)
    : uid_(uid),
      name_(std::move(name)),
      services_(services),
      host_power_(host_power),
      machines_(machines),
      tuning_(std::move(tuning)),
      rng_(seed),
      data_manager_(tuning_.data_store_max_bytes) {}

void Sed::register_at(net::Endpoint parent) {
  parent_ = parent;
  SedRegisterMsg msg;
  msg.sed_uid = uid_;
  msg.name = name_;
  msg.host_power = host_power_;
  msg.machines = machines_;
  for (const auto& path : services_.service_paths()) {
    msg.services.push_back(services_.find_by_path(path)->desc);
  }
  env()->send(net::Envelope{endpoint(), parent, kSedRegister, msg.encode(), 0});
  if (tuning_.load_report_period > 0.0) arm_load_report();
  if (tuning_.heartbeat_period > 0.0) arm_heartbeat();
}

void Sed::arm_load_report() {
  // Each periodic loop is pinned to the epoch that armed it; fail() and
  // shutdown() bump the epoch, so a stale iteration dies instead of
  // running alongside the chain a restart armed.
  const std::uint64_t epoch = epoch_;
  env()->post_after(tuning_.load_report_period, [this, epoch]() {
    if (epoch != epoch_ || failed_ || parent_ == net::kNullEndpoint) return;
    LoadReportMsg report;
    report.sed_uid = uid_;
    report.queue_length = static_cast<double>(queue_length());
    report.queued_work_s = queued_work_s_;
    report.jobs_completed = completed_;
    env()->send(
        net::Envelope{endpoint(), parent_, kLoadReport, report.encode(), 0});
    arm_load_report();
  });
}

void Sed::arm_heartbeat() {
  const std::uint64_t epoch = epoch_;
  env()->post_after(tuning_.heartbeat_period, [this, epoch]() {
    if (epoch != epoch_ || failed_ || parent_ == net::kNullEndpoint) return;
    HeartbeatMsg beat;
    beat.uid = uid_;
    beat.seq = ++heartbeat_seq_;
    env()->send(
        net::Envelope{endpoint(), parent_, kHeartbeat, beat.encode(), 0});
    arm_heartbeat();
  });
}

void Sed::fail() {
  failed_ = true;
  ++epoch_;
  queue_.clear();
  if constexpr (check::kEnabled) live_calls_.reset();
  queued_work_s_ = 0.0;
  // Running contexts are abandoned: their finish() becomes a no-op send
  // from a detached endpoint once we leave the Env.
  env()->detach(endpoint());
}

void Sed::restart() {
  GC_CHECK_MSG(failed_, "restarting a SED that is not failed");
  failed_ = false;
  running_ = 0;
  heartbeat_seq_ = 0;
  // The crash lost everything in memory: queued jobs are already gone
  // (fail() cleared them) and the DTM store starts cold — clients holding
  // references recover through the missing-data resend path. seen_calls_
  // and executed_calls_ survive on purpose (see the header).
  data_manager_.clear();
  env()->attach(*this, node());
  register_at(parent_);
}

void Sed::shutdown() { ++epoch_; }

void Sed::on_message(const net::Envelope& envelope) {
  if (failed_) return;
  switch (envelope.type) {
    case kRequestCollect:
      handle_collect(envelope);
      break;
    case kCallData:
      handle_call(envelope);
      break;
    case kRegisterAck:
      break;
    default:
      GC_WARN << "sed " << name_ << ": unexpected message type "
              << envelope.type;
  }
}

double Sed::noisy(double base) {
  if (tuning_.delay_noise_cv <= 0.0 || base <= 0.0) return base;
  return rng_.lognormal_with_mean(base, tuning_.delay_noise_cv);
}

sched::Estimation Sed::make_estimation(const ProfileDesc& request) {
  sched::Estimation est;
  est.timestamp = env()->now();
  est.host_power = host_power_;
  est.machines = machines_;
  est.queue_length = static_cast<double>(queue_length());
  est.queued_work_s = queued_work_s_;
  est.free_cpu = running_ > 0 ? 0.15 : 0.95;
  est.free_mem_mb = running_ > 0 ? 1024.0 : 3584.0;
  est.jobs_completed = completed_;
  const ServiceEntry* entry = services_.find(request);
  if (entry != nullptr && entry->estimator) {
    entry->estimator(request, host_power_, machines_, est);
  }
  return est;
}

void Sed::handle_collect(const net::Envelope& envelope) {
  const RequestCollectMsg msg = RequestCollectMsg::decode(envelope.payload);
  CandidatesMsg reply;
  reply.request_key = msg.request_key;
  if (services_.find(msg.desc) != nullptr) {
    sched::Candidate self;
    self.sed_uid = uid_;
    self.sed_endpoint = endpoint();
    self.sed_name = name_;
    self.est = make_estimation(msg.desc);
    reply.candidates.push_back(std::move(self));
  }
  const net::Endpoint to = envelope.from;
  const obs::TraceId trace_id = envelope.trace_id;
  const std::uint64_t epoch = epoch_;
  env()->post_after(noisy(tuning_.estimation_delay),
                    [this, to, reply, trace_id, epoch]() {
    if (failed_ || epoch != epoch_) return;
    env()->send(net::Envelope{endpoint(), to, kCandidates, reply.encode(), 0,
                              trace_id});
  });
}

void Sed::handle_call(const net::Envelope& envelope) {
  GC_INVARIANT(envelope.trace_id != 0,
               "call-data envelope carries no trace id");
  CallDataMsg msg = CallDataMsg::decode(envelope.payload);
  // At-most-once: a call id we already accepted is a duplicate delivery
  // (the network's or a stale retry's) and must not execute again.
  if (seen_calls_.count(msg.call_id) > 0) {
    if (obs::metrics_on()) {
      obs::Metrics::instance()
          .counter("diet_sed_duplicate_calls_total", {{"sed", name_}})
          .inc();
    }
    return;
  }
  seen_calls_.insert(msg.call_id);
  net::Reader r(msg.inputs);
  PendingJob job;
  job.call_id = msg.call_id;
  job.client = envelope.from;
  job.profile = Profile::deserialize_inputs(msg.path, msg.last_in,
                                            msg.last_inout, msg.last_out, r);
  job.arrived = env()->now();
  job.comp_estimate_s = 0.0;
  job.trace_id = envelope.trace_id;

  const ServiceEntry* entry = services_.find_by_path(msg.path);
  if (entry == nullptr) {
    GC_WARN << "sed " << name_ << ": no service " << msg.path;
    seen_calls_.erase(msg.call_id);  // the error reply invites a resend
    CallResultMsg result;
    result.call_id = msg.call_id;
    result.solve_status = -1;
    env()->send(net::Envelope{endpoint(), job.client, kCallResult,
                              result.encode(), 0, job.trace_id});
    return;
  }

  // Persistent data management (DTM): incoming persistent values are
  // stored on receipt so calls queued behind this one can reference them;
  // incoming references are resolved against the store.
  for (int i = 0; i <= job.profile.last_inout(); ++i) {
    ArgValue& arg = job.profile.arg(i);
    if (!arg.has_value()) continue;
    if (arg.is_reference()) {
      const ArgValue* stored = data_manager_.lookup(arg.data_id());
      if (stored == nullptr) {
        GC_WARN << "sed " << name_ << ": missing persistent data "
                << arg.data_id() << " for call " << msg.call_id;
        seen_calls_.erase(msg.call_id);  // the full-data resend reuses the id
        CallResultMsg result;
        result.call_id = msg.call_id;
        result.solve_status = kMissingDataStatus;
        env()->send(net::Envelope{endpoint(), job.client, kCallResult,
                                  result.encode(), 0, job.trace_id});
        return;
      }
      arg.materialize_from(*stored);
    } else if (arg.desc.persistence != Persistence::kVolatile &&
               !arg.data_id().empty()) {
      data_manager_.store(arg);
    }
  }
  if (entry->estimator) {
    sched::Estimation est;
    est.host_power = host_power_;
    est.machines = machines_;
    entry->estimator(entry->desc, host_power_, machines_, est);
    if (est.service_comp_s > 0.0) job.comp_estimate_s = est.service_comp_s;
  }
  if (obs::tracing()) {
    job.queue_span = obs::Tracer::instance().begin_span(
        env()->now(), "queue:" + msg.path, "sed:" + name_, job.trace_id);
  }
  queued_work_s_ += job.comp_estimate_s;
  if constexpr (check::kEnabled) {
    live_calls_.add(job.call_id, __FILE__, __LINE__);
  }
  job.epoch = epoch_;
  queue_.push_back(std::move(job));
  if (obs::metrics_on()) {
    auto& gauge = obs::Metrics::instance()
        .gauge("diet_sed_queue_depth", {{"sed", name_}});
    gauge.set(static_cast<double>(queue_length()));
    GC_INVARIANT(gauge.value() == static_cast<double>(queue_length()),
                 "queue-depth gauge diverged from the queue");
  }
  start_next();
}

void Sed::start_next() {
  if (running_ >= tuning_.concurrency || queue_.empty()) return;
  ++running_;
  PendingJob job = std::move(queue_.front());
  queue_.pop_front();

  const double init = noisy(tuning_.init_delay);
  env()->post_after(init, [this, job = std::move(job)]() mutable {
    if (failed_ || job.epoch != epoch_) return;
    // Service initiation complete: tell the client (the latency series of
    // Figure 5 ends here) and hand over to the solve function.
    CallStartedMsg started;
    started.call_id = job.call_id;
    env()->send(net::Envelope{endpoint(), job.client, kCallStarted,
                              started.encode(), 0, job.trace_id});
    const std::string path = job.profile.path();
    const ServiceEntry* entry = services_.find_by_path(path);
    GC_CHECK(entry != nullptr);  // checked on enqueue
    obs::Tracer::instance().end_span(job.queue_span, env()->now());
    job.queue_span = 0;
    if (obs::tracing()) {
      job.exec_span = obs::Tracer::instance().begin_span(
          env()->now(), "exec:" + path, "sed:" + name_, job.trace_id);
    }
    if constexpr (check::kEnabled) {
      // THE at-most-once oracle: this id reaches a solve function for the
      // first and only time, ever, crashes and retries notwithstanding.
      executed_calls_.add(job.call_id, __FILE__, __LINE__);
    }
    auto ctx =
        std::make_unique<SedContext>(*this, std::move(job), env()->now());
    ctx->work_dir_ = tuning_.work_dir;
    ctx->rng_.reseed(rng_.next_u64());
    ServiceContext& ref = *ctx;
    live_contexts_.push_back(std::move(ctx));
    entry->solve(ref);
  });
}

void Sed::complete_job(PendingJob& job, SimTime started, int solve_status) {
  // A dead SED sends nothing; a job from before a crash-restart belongs
  // to the previous incarnation and must not leak into this one.
  if (failed_ || job.epoch != epoch_) return;
  Profile& profile = job.profile;
  const SimTime finished = env()->now();

  // Persist non-volatile arguments for future reference calls.
  if (solve_status == 0) {
    for (int i = 0; i < profile.arg_count(); ++i) {
      const ArgValue& arg = profile.arg(i);
      if (arg.desc.persistence != Persistence::kVolatile &&
          arg.has_value() && !arg.data_id().empty()) {
        data_manager_.store(arg);
      }
    }
  }

  CallResultMsg result;
  result.call_id = job.call_id;
  result.solve_status = solve_status;
  net::Writer w;
  profile.serialize_outputs(w);
  result.outputs = w.take();
  env()->send(net::Envelope{endpoint(), job.client, kCallResult,
                            result.encode(), profile.out_file_bytes(),
                            job.trace_id});

  ++completed_;
  busy_seconds_ += finished - started;
  queued_work_s_ = std::max(0.0, queued_work_s_ - job.comp_estimate_s);
  GC_INVARIANT(running_ > 0, "completing a job with no job running");
  if constexpr (check::kEnabled) live_calls_.remove(job.call_id);
  job_log_.push_back(JobRecord{job.call_id, profile.path(), job.arrived,
                               started, finished, solve_status});
  obs::Tracer::instance().end_span(job.exec_span, finished);
  job.exec_span = 0;
  if (obs::metrics_on()) {
    auto& m = obs::Metrics::instance();
    const obs::Labels labels = {{"sed", name_}};
    m.counter("diet_sed_jobs_total", labels).inc();
    m.gauge("diet_sed_busy_seconds_total", labels).add(finished - started);
    m.gauge("diet_sed_queue_depth", labels)
        .set(static_cast<double>(queue_length() - 1));  // this job leaves
  }

  if (parent_ != net::kNullEndpoint) {
    JobDoneMsg done;
    done.sed_uid = uid_;
    done.call_id = job.call_id;
    done.busy_seconds = finished - started;
    env()->send(net::Envelope{endpoint(), parent_, kJobDone, done.encode(), 0,
                              job.trace_id});
  }

  --running_;
  // Retire finished contexts on a fresh event: the caller's stack frame
  // still lives inside the context we are about to destroy.
  env()->post_after(0.0, [this]() {
    live_contexts_.erase(
        std::remove_if(live_contexts_.begin(), live_contexts_.end(),
                       [](const std::unique_ptr<ServiceContext>& c) {
                         return static_cast<SedContext*>(c.get())->finished();
                       }),
        live_contexts_.end());
    start_next();
  });
}

}  // namespace gc::diet
