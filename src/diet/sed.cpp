#include "diet/sed.hpp"

#include <algorithm>
#include <utility>

#include "check/mutation.hpp"
#include "common/log.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace gc::diet {

namespace {

/// ServiceContext bound to one running job on one SED.
class SedContext final : public ServiceContext {
 public:
  SedContext(Sed& sed, Sed::PendingJob job, SimTime started)
      : sed_(sed), job_(std::move(job)), started_(started) {}

  Profile& profile() override { return job_.profile; }
  net::Env& env() override { return *sed_.env(); }
  double host_power() const override { return sed_.host_power(); }
  int machines() const override { return sed_.machines(); }
  const std::string& sed_name() const override { return sed_.name(); }
  const std::string& work_dir() const override { return work_dir_; }
  Rng& rng() override { return rng_; }

  void compute(double modeled_seconds, std::function<int()> work,
               std::function<void(int)> then) override {
    sed_.env()->execute(sed_.node(), modeled_seconds, std::move(work),
                        std::move(then));
  }

  void finish(int solve_status) override {
    GC_CHECK_MSG(!finished_, "ServiceContext::finish called twice");
    finished_ = true;
    sed_.complete_job(job_, started_, solve_status);
  }

  [[nodiscard]] bool finished() const { return finished_; }

 private:
  friend class gc::diet::Sed;
  Sed& sed_;
  Sed::PendingJob job_;
  SimTime started_;
  std::string work_dir_;
  Rng rng_{0};
  bool finished_ = false;
};

/// Decodes a stored/pushed blob back into an ArgValue for materialization.
ArgValue decode_blob(const net::Bytes& value) {
  net::Reader r(value);
  ArgValue arg;
  arg.deserialize_value(r);
  return arg;
}

}  // namespace

Sed::Sed(std::uint64_t uid, std::string name, ServiceTable& services,
         double host_power, int machines, SedTuning tuning,
         std::uint64_t seed)
    : uid_(uid),
      name_(std::move(name)),
      services_(services),
      host_power_(host_power),
      machines_(machines),
      tuning_(std::move(tuning)),
      rng_(seed),
      data_manager_(tuning_.data_store_max_bytes, name_) {
  // Catalog-coordinated eviction: an LRU victim leaves the hierarchy
  // catalog too, so locate answers never point at data we dropped.
  data_manager_.set_eviction_listener(
      [this](const std::string& id, std::int64_t /*bytes*/) {
        if (failed_ || parent_ == net::kNullEndpoint || env() == nullptr) {
          return;
        }
        dtm::DataUnregisterMsg msg;
        msg.sed_uid = uid_;
        msg.data_id = id;
        env()->send(net::Envelope{endpoint(), parent_, dtm::kDataUnregister,
                                  msg.encode(), 0});
      });
}

void Sed::register_at(net::Endpoint parent) {
  parent_ = parent;
  SedRegisterMsg msg;
  msg.sed_uid = uid_;
  msg.name = name_;
  msg.host_power = host_power_;
  msg.machines = machines_;
  for (const auto& path : services_.service_paths()) {
    msg.services.push_back(services_.find_by_path(path)->desc);
  }
  env()->send(net::Envelope{endpoint(), parent, kSedRegister, msg.encode(), 0});
  if (tuning_.load_report_period > 0.0) arm_load_report();
  if (tuning_.heartbeat_period > 0.0) arm_heartbeat();
}

void Sed::arm_load_report() {
  // Each periodic loop is pinned to the epoch that armed it; fail() and
  // shutdown() bump the epoch, so a stale iteration dies instead of
  // running alongside the chain a restart armed.
  const std::uint64_t epoch = epoch_;
  env()->post_after_as(endpoint(), tuning_.load_report_period, [this, epoch]() {
    if (epoch != epoch_ || failed_ || parent_ == net::kNullEndpoint) return;
    LoadReportMsg report;
    report.sed_uid = uid_;
    report.queue_length = static_cast<double>(queue_length());
    report.queued_work_s = queued_work_s_;
    report.jobs_completed = completed_;
    env()->send(
        net::Envelope{endpoint(), parent_, kLoadReport, report.encode(), 0});
    arm_load_report();
  });
}

void Sed::arm_heartbeat() {
  const std::uint64_t epoch = epoch_;
  env()->post_after_as(endpoint(), tuning_.heartbeat_period, [this, epoch]() {
    if (epoch != epoch_ || failed_ || parent_ == net::kNullEndpoint) return;
    HeartbeatMsg beat;
    beat.uid = uid_;
    beat.seq = ++heartbeat_seq_;
    env()->send(
        net::Envelope{endpoint(), parent_, kHeartbeat, beat.encode(), 0});
    arm_heartbeat();
  });
}

void Sed::fail() {
  failed_ = true;
  ++epoch_;
  queue_.clear();
  for (auto& [id, fetch] : fetches_) {
    if (fetch.timer != 0) env()->cancel_timer(fetch.timer);
  }
  fetches_.clear();
  blocked_.clear();
  stripes_.clear();  // partially reassembled transfers die with the crash
  if constexpr (check::kEnabled) live_calls_.reset();
  queued_work_s_ = 0.0;
  // Running contexts are abandoned: their finish() becomes a no-op send
  // from a detached endpoint once we leave the Env.
  env()->detach(endpoint());
}

void Sed::restart() {
  GC_CHECK_MSG(failed_, "restarting a SED that is not failed");
  failed_ = false;
  running_ = 0;
  heartbeat_seq_ = 0;
  // The crash lost everything in memory: queued jobs are already gone
  // (fail() cleared them) and the DTM store starts cold — the parent
  // drops this SED's catalog entries when it sees the re-registration,
  // and clients holding references recover through a peer re-fetch (or
  // the missing-data resend when no replica survived). seen_calls_ and
  // executed_calls_ survive on purpose (see the header).
  data_manager_.clear();
  env()->attach(*this, node());
  register_at(parent_);
}

void Sed::shutdown() { ++epoch_; }

void Sed::on_message(const net::Envelope& envelope) {
  if (failed_) return;
  switch (envelope.type) {
    case kRequestCollect:
      handle_collect(envelope);
      break;
    case kCallData:
      handle_call(envelope);
      break;
    case dtm::kDataLocation:
      handle_data_location(envelope);
      break;
    case dtm::kDataPull:
      handle_data_pull(envelope);
      break;
    case dtm::kDataPush:
      handle_data_push(envelope);
      break;
    case dtm::kDataStripe:
      handle_data_stripe(envelope);
      break;
    case dtm::kDataReplicate:
      handle_data_replicate(envelope);
      break;
    case kRegisterAck:
      break;
    default:
      GC_WARN << "sed " << name_ << ": unexpected message type "
              << envelope.type;
  }
}

double Sed::noisy(double base) {
  if (tuning_.delay_noise_cv <= 0.0 || base <= 0.0) return base;
  return rng_.lognormal_with_mean(base, tuning_.delay_noise_cv);
}

sched::Estimation Sed::make_estimation(const ProfileDesc& request) {
  sched::Estimation est;
  est.timestamp = env()->now();
  est.host_power = host_power_;
  est.machines = machines_;
  est.queue_length = static_cast<double>(queue_length());
  est.queued_work_s = queued_work_s_;
  est.free_cpu = running_ > 0 ? 0.15 : 0.95;
  est.free_mem_mb = running_ > 0 ? 1024.0 : 3584.0;
  est.jobs_completed = completed_;
  const ServiceEntry* entry = services_.find(request);
  if (entry != nullptr && entry->estimator) {
    entry->estimator(request, host_power_, machines_, est);
  }
  return est;
}

void Sed::handle_collect(const net::Envelope& envelope) {
  const RequestCollectMsg msg = RequestCollectMsg::decode(envelope.payload);
  CandidatesMsg reply;
  reply.request_key = msg.request_key;
  if (services_.find(msg.desc) != nullptr) {
    sched::Candidate self;
    self.sed_uid = uid_;
    self.sed_endpoint = endpoint();
    self.sed_name = name_;
    self.est = make_estimation(msg.desc);
    reply.candidates.push_back(std::move(self));
  }
  const net::Endpoint to = envelope.from;
  const obs::TraceId trace_id = envelope.trace_id;
  const std::uint64_t epoch = epoch_;
  env()->post_after(noisy(tuning_.estimation_delay),
                    [this, to, reply, trace_id, epoch]() {
    if (failed_ || epoch != epoch_) return;
    env()->send(net::Envelope{endpoint(), to, kCandidates, reply.encode(), 0,
                              trace_id});
  });
}

void Sed::store_value(const ArgValue& arg, int replicas, obs::TraceId trace) {
  net::Writer w;
  arg.serialize_value(w);
  dtm::Blob blob;
  blob.value = w.take();
  blob.charged_bytes = arg.wire_bytes();
  const std::int64_t charged = blob.charged_bytes;
  const bool fresh = data_manager_.store(arg.data_id(), std::move(blob));
  if (fresh && parent_ != net::kNullEndpoint) {
    dtm::DataRegisterMsg reg;
    reg.data_id = arg.data_id();
    reg.holder = dtm::ReplicaInfo{uid_, endpoint(), node(), charged};
    reg.replicas = static_cast<std::int32_t>(replicas);
    env()->send(net::Envelope{endpoint(), parent_, dtm::kDataRegister,
                              reg.encode(), 0, trace});
  }
}

void Sed::begin_fetch(const std::string& id, std::uint64_t call_id,
                      obs::TraceId trace) {
  FetchState& fetch = fetches_[id];
  fetch.waiters.push_back(call_id);
  if (fetch.waiters.size() > 1) return;  // locate already in flight
  dtm::DataLocateMsg msg;
  msg.data_id = id;
  msg.requester_uid = uid_;
  msg.requester_endpoint = endpoint();
  env()->send(net::Envelope{endpoint(), parent_, dtm::kDataLocate,
                            msg.encode(), 0, trace});
  if (tuning_.data_fetch_timeout_s > 0.0) {
    const std::uint64_t epoch = epoch_;
    fetch.timer = env()->post_after(tuning_.data_fetch_timeout_s,
                                    [this, id, epoch]() {
      if (failed_ || epoch != epoch_) return;
      auto it = fetches_.find(id);
      if (it == fetches_.end()) return;
      it->second.timer = 0;
      fail_fetch(id);
    });
  }
}

void Sed::fail_fetch(const std::string& id) {
  auto it = fetches_.find(id);
  if (it == fetches_.end()) return;
  FetchState fetch = std::move(it->second);
  fetches_.erase(it);
  if (fetch.timer != 0) env()->cancel_timer(fetch.timer);
  for (const std::uint64_t call_id : fetch.waiters) {
    auto blocked = blocked_.find(call_id);
    if (blocked == blocked_.end()) continue;  // already failed via another id
    PendingJob job = std::move(blocked->second.job);
    blocked_.erase(blocked);
    GC_WARN << "sed " << name_ << ": missing persistent data " << id
            << " for call " << job.call_id;
    seen_calls_.erase(job.call_id);  // the full-data resend reuses the id
    CallResultMsg result;
    result.call_id = job.call_id;
    result.solve_status = kMissingDataStatus;
    env()->send(net::Envelope{endpoint(), job.client, kCallResult,
                              result.encode(), 0, job.trace_id});
  }
}

void Sed::handle_call(const net::Envelope& envelope) {
  GC_INVARIANT(envelope.trace_id != 0,
               "call-data envelope carries no trace id");
  CallDataMsg msg = CallDataMsg::decode(envelope.payload);
  // At-most-once: a call id we already accepted is a duplicate delivery
  // (the network's or a stale retry's) and must not execute again.
  // Mutation seam kSedSkipDedup drops the journal lookup — a duplicated
  // kCallData then executes twice and trips executed_calls_.
  if (!check::mutation_enabled(check::Mutation::kSedSkipDedup) &&
      seen_calls_.count(msg.call_id) > 0) {
    if (obs::metrics_on()) {
      obs::Metrics::instance()
          .counter("diet_sed_duplicate_calls_total", {{"sed", name_}})
          .inc();
    }
    return;
  }
  seen_calls_.insert(msg.call_id);
  net::Reader r(msg.inputs);
  PendingJob job;
  job.call_id = msg.call_id;
  job.client = envelope.from;
  job.profile = Profile::deserialize_inputs(msg.path, msg.last_in,
                                            msg.last_inout, msg.last_out, r);
  job.arrived = env()->now();
  job.comp_estimate_s = 0.0;
  job.trace_id = envelope.trace_id;

  const ServiceEntry* entry = services_.find_by_path(msg.path);
  if (entry == nullptr) {
    GC_WARN << "sed " << name_ << ": no service " << msg.path;
    seen_calls_.erase(msg.call_id);  // the error reply invites a resend
    CallResultMsg result;
    result.call_id = msg.call_id;
    result.solve_status = -1;
    env()->send(net::Envelope{endpoint(), job.client, kCallResult,
                              result.encode(), 0, job.trace_id});
    return;
  }

  // Persistent data management: incoming persistent values are stored on
  // receipt (and registered in the hierarchy catalog) so calls queued
  // behind this one can reference them; incoming references are resolved
  // against the local store, and local misses start a peer-to-peer fetch
  // through the catalog instead of failing back to the client.
  std::set<std::string> missing;
  for (int i = 0; i <= job.profile.last_inout(); ++i) {
    ArgValue& arg = job.profile.arg(i);
    if (!arg.has_value()) continue;
    if (arg.is_reference()) {
      const dtm::Blob* stored = data_manager_.lookup(arg.data_id());
      if (stored == nullptr) {
        if (parent_ == net::kNullEndpoint) {
          // No hierarchy to ask: fail fast, the client resends in full.
          GC_WARN << "sed " << name_ << ": missing persistent data "
                  << arg.data_id() << " for call " << msg.call_id;
          seen_calls_.erase(msg.call_id);
          CallResultMsg result;
          result.call_id = msg.call_id;
          result.solve_status = kMissingDataStatus;
          env()->send(net::Envelope{endpoint(), job.client, kCallResult,
                                    result.encode(), 0, job.trace_id});
          return;
        }
        missing.insert(arg.data_id());
      } else {
        arg.materialize_from(decode_blob(stored->value));
      }
    } else if (arg.desc.persistence != Persistence::kVolatile &&
               !arg.data_id().empty()) {
      store_value(arg, tuning_.replication_factor, job.trace_id);
    }
  }
  if (!missing.empty()) {
    const std::uint64_t call_id = job.call_id;
    const obs::TraceId trace = job.trace_id;
    BlockedCall blocked;
    blocked.job = std::move(job);
    blocked.missing = missing;
    blocked_.emplace(call_id, std::move(blocked));
    for (const auto& id : missing) begin_fetch(id, call_id, trace);
    return;
  }
  admit_job(std::move(job), entry);
}

void Sed::admit_job(PendingJob job, const ServiceEntry* entry) {
  if (entry->estimator) {
    sched::Estimation est;
    est.host_power = host_power_;
    est.machines = machines_;
    entry->estimator(entry->desc, host_power_, machines_, est);
    if (est.service_comp_s > 0.0) job.comp_estimate_s = est.service_comp_s;
  }
  if (obs::tracing()) {
    job.queue_span = obs::Tracer::instance().begin_span(
        env()->now(), "queue:" + job.profile.path(), "sed:" + name_,
        job.trace_id);
  }
  queued_work_s_ += job.comp_estimate_s;
  if constexpr (check::kEnabled) {
    live_calls_.add(job.call_id, __FILE__, __LINE__);
  }
  job.epoch = epoch_;
  queue_.push_back(std::move(job));
  if (obs::metrics_on()) {
    auto& gauge = obs::Metrics::instance()
        .gauge("diet_sed_queue_depth", {{"sed", name_}});
    gauge.set(static_cast<double>(queue_length()));
    GC_INVARIANT(gauge.value() == static_cast<double>(queue_length()),
                 "queue-depth gauge diverged from the queue");
  }
  start_next();
}

void Sed::handle_data_location(const net::Envelope& envelope) {
  const dtm::DataLocationMsg msg = dtm::DataLocationMsg::decode(
      envelope.payload);
  auto it = fetches_.find(msg.data_id);
  if (it == fetches_.end() || it->second.pull_sent) return;
  // Nearest replica on the modeled links; smallest uid breaks ties so the
  // choice is deterministic under the DES.
  const dtm::ReplicaInfo* best = nullptr;
  double best_time = 0.0;
  for (const auto& replica : msg.replicas) {
    if (replica.sed_uid == uid_) continue;
    // Contention-aware when the flow model is on: a congested path ranks
    // worse than an idle one even if its raw links are faster.
    const double t =
        env()->estimate_transfer_s(replica.node, node(), replica.bytes);
    if (best == nullptr || t < best_time ||
        (t == best_time && replica.sed_uid < best->sed_uid)) {
      best = &replica;
      best_time = t;
    }
  }
  if (best == nullptr) {
    fail_fetch(msg.data_id);
    return;
  }
  it->second.pull_sent = true;
  dtm::DataPullMsg pull;
  pull.data_id = msg.data_id;
  pull.requester_uid = uid_;
  if (tuning_.wan.relay && parent_ != net::kNullEndpoint) {
    pull.relay_endpoint = parent_;  // stripes hop through our LA
  }
  env()->send(net::Envelope{endpoint(), best->endpoint, dtm::kDataPull,
                            pull.encode(), 0, envelope.trace_id});
}

void Sed::handle_data_pull(const net::Envelope& envelope) {
  const dtm::DataPullMsg msg = dtm::DataPullMsg::decode(envelope.payload);
  push_data(msg, envelope.from, envelope.trace_id);
}

void Sed::push_data(const dtm::DataPullMsg& msg, net::Endpoint requester,
                    obs::TraceId trace) {
  const dtm::Blob* stored = data_manager_.lookup(msg.data_id);
  if (stored == nullptr) {
    // Evicted between the catalog answer and the pull: a not-found push
    // (never striped — there are no bytes to stripe).
    dtm::DataPushMsg push;
    push.data_id = msg.data_id;
    env()->send(net::Envelope{endpoint(), requester, dtm::kDataPush,
                              push.encode(), 0, trace});
    return;
  }
  const std::int64_t total = stored->charged_bytes;
  // The requester holds a copy once the transfer lands: our entry now has
  // a replica elsewhere and becomes a preferred eviction victim.
  data_manager_.set_replica_hint(msg.data_id, 1);
  if (obs::metrics_on()) {
    // Per-link accounting, same label convention as net_bytes_total:
    // this transfer rides node() -> requester's node.
    const std::string link = "n" + std::to_string(node()) + "->n" +
                             std::to_string(env()->node_of(requester));
    obs::Metrics::instance()
        .counter("diet_dtm_bytes_moved_total",
                 {{"sed", name_}, {"link", link}})
        .inc(static_cast<std::uint64_t>(total));
  }
  if (!tuning_.wan.striping(total)) {
    dtm::DataPushMsg push;
    push.data_id = msg.data_id;
    push.found = true;
    push.value = stored->value;
    push.charged_bytes = total;
    const std::int64_t extra = std::max<std::int64_t>(
        0, total - static_cast<std::int64_t>(stored->value.size()));
    env()->send(net::Envelope{endpoint(), requester, dtm::kDataPush,
                              push.encode(), extra, trace});
    return;
  }

  // MPWide-style striped transfer: split the bulk push into K stripes,
  // each an out-of-band envelope — its own parallel stream under the
  // contention flow model. Stripe 0 carries the serialized value; the
  // others charge their slice purely through modeled_extra_bytes.
  const int streams = tuning_.wan.streams;
  const std::uint64_t transfer_id = (uid_ << 32) | ++stripe_counter_;
  double compression = tuning_.wan.compression;
  if (compression < 0.0) compression = 0.0;
  if (compression >= 1.0) compression = 0.99;
  std::int64_t wire_total = total;
  if (compression > 0.0) {
    wire_total = static_cast<std::int64_t>(static_cast<double>(total) *
                                           (1.0 - compression));
    // Stripe 0's physical payload still travels: never charge less.
    wire_total = std::max<std::int64_t>(
        wire_total, static_cast<std::int64_t>(stored->value.size()));
  }
  const net::Endpoint to =
      (tuning_.wan.relay && msg.relay_endpoint != net::kNullEndpoint)
          ? msg.relay_endpoint
          : requester;
  const std::int64_t share = wire_total / streams;
  std::vector<net::Envelope> stripes;
  stripes.reserve(static_cast<std::size_t>(streams));
  for (int i = 0; i < streams; ++i) {
    dtm::DataStripeMsg stripe;
    stripe.transfer_id = transfer_id;
    stripe.data_id = msg.data_id;
    stripe.stripe_index = static_cast<std::uint32_t>(i);
    stripe.stripe_count = static_cast<std::uint32_t>(streams);
    stripe.found = true;
    stripe.total_bytes = total;
    stripe.dest_endpoint = requester;
    std::int64_t stripe_bytes = share;
    std::int64_t extra = share;
    if (i == 0) {
      stripe_bytes = wire_total - share * (streams - 1);  // + remainder
      stripe.value = stored->value;
      extra = std::max<std::int64_t>(
          0, stripe_bytes - static_cast<std::int64_t>(stored->value.size()));
    }
    net::Envelope out{endpoint(), to, dtm::kDataStripe, stripe.encode(),
                      extra, trace};
    out.oob = true;  // parallel streams skip FIFO serialization
    stripes.push_back(std::move(out));
  }
  const double compress_s =
      (compression > 0.0 && tuning_.wan.compress_bps > 0.0)
          ? static_cast<double>(total) / tuning_.wan.compress_bps
          : 0.0;
  if (compress_s > 0.0) {
    // Compression is sender-side CPU: the stripes leave after it.
    const std::uint64_t epoch = epoch_;
    env()->post_after(compress_s, [this, stripes = std::move(stripes),
                                   epoch]() {
      if (failed_ || epoch != epoch_) return;
      for (const auto& out : stripes) env()->send(out);
    });
    return;
  }
  for (const auto& out : stripes) env()->send(out);
}

void Sed::handle_data_push(const net::Envelope& envelope) {
  const dtm::DataPushMsg msg = dtm::DataPushMsg::decode(envelope.payload);
  finish_fetch(msg.data_id, msg.found, msg.value, msg.charged_bytes,
               envelope.trace_id);
}

void Sed::handle_data_stripe(const net::Envelope& envelope) {
  // Relay hops are handled by agents; a stripe reaching a SED is ours.
  const dtm::DataStripeMsg msg = dtm::DataStripeMsg::decode(envelope.payload);
  StripeAssembly& assembly = stripes_[msg.transfer_id];
  if (assembly.count == 0) assembly.count = msg.stripe_count;
  GC_CHECK_MSG(assembly.count == msg.stripe_count,
               "stripe count changed mid-transfer");
  ++assembly.received;
  if (msg.stripe_index == 0) assembly.value = msg.value;
  assembly.total_bytes = msg.total_bytes;
  if (assembly.received < assembly.count) return;
  StripeAssembly done = std::move(assembly);
  stripes_.erase(msg.transfer_id);
  const double inflate_s =
      (tuning_.wan.compression > 0.0 && tuning_.wan.compress_bps > 0.0)
          ? static_cast<double>(done.total_bytes) / tuning_.wan.compress_bps
          : 0.0;
  if (inflate_s > 0.0) {
    // Decompression is receiver-side CPU before the value is usable.
    const std::string data_id = msg.data_id;
    const obs::TraceId trace = envelope.trace_id;
    const std::uint64_t epoch = epoch_;
    env()->post_after(inflate_s, [this, data_id, value = std::move(done.value),
                                  total = done.total_bytes, trace, epoch]() {
      if (failed_ || epoch != epoch_) return;
      finish_fetch(data_id, true, value, total, trace);
    });
    return;
  }
  finish_fetch(msg.data_id, true, done.value, done.total_bytes,
               envelope.trace_id);
}

void Sed::finish_fetch(const std::string& data_id, bool found,
                       const net::Bytes& value, std::int64_t charged_bytes,
                       obs::TraceId trace) {
  auto it = fetches_.find(data_id);
  if (!found) {
    // The peer evicted it between the catalog answer and our pull.
    if (it != fetches_.end()) fail_fetch(data_id);
    return;
  }
  dtm::Blob blob;
  blob.value = value;
  blob.charged_bytes = charged_bytes;
  const bool fresh = data_manager_.store(data_id, std::move(blob));
  // The pusher still holds the value: both copies are replicated now.
  data_manager_.set_replica_hint(data_id, 1);
  if (fresh && parent_ != net::kNullEndpoint) {
    dtm::DataRegisterMsg reg;
    reg.data_id = data_id;
    reg.holder = dtm::ReplicaInfo{uid_, endpoint(), node(), charged_bytes};
    reg.replicas = 1;  // a pulled copy never cascades replication
    env()->send(net::Envelope{endpoint(), parent_, dtm::kDataRegister,
                              reg.encode(), 0, trace});
  }
  if (it == fetches_.end()) return;  // replication copy: nobody is waiting
  FetchState fetch = std::move(it->second);
  fetches_.erase(it);
  if (fetch.timer != 0) env()->cancel_timer(fetch.timer);
  const ArgValue stored = decode_blob(value);
  for (const std::uint64_t call_id : fetch.waiters) {
    auto blocked = blocked_.find(call_id);
    if (blocked == blocked_.end()) continue;  // failed via another id
    BlockedCall& call = blocked->second;
    for (int i = 0; i <= call.job.profile.last_inout(); ++i) {
      ArgValue& arg = call.job.profile.arg(i);
      if (arg.has_value() && arg.is_reference() &&
          arg.data_id() == data_id) {
        arg.materialize_from(stored);
      }
    }
    call.missing.erase(data_id);
    if (call.missing.empty()) {
      PendingJob job = std::move(call.job);
      blocked_.erase(blocked);
      const ServiceEntry* entry = services_.find_by_path(job.profile.path());
      GC_CHECK(entry != nullptr);  // checked when the call arrived
      admit_job(std::move(job), entry);
    }
  }
}

void Sed::handle_data_replicate(const net::Envelope& envelope) {
  const dtm::DataReplicateMsg msg = dtm::DataReplicateMsg::decode(
      envelope.payload);
  if (msg.holder.sed_uid == uid_ || data_manager_.contains(msg.data_id)) {
    return;
  }
  dtm::DataPullMsg pull;
  pull.data_id = msg.data_id;
  pull.requester_uid = uid_;
  if (tuning_.wan.relay && parent_ != net::kNullEndpoint) {
    pull.relay_endpoint = parent_;
  }
  env()->send(net::Envelope{endpoint(), msg.holder.endpoint, dtm::kDataPull,
                            pull.encode(), 0, envelope.trace_id});
}

void Sed::start_next() {
  if (running_ >= tuning_.concurrency || queue_.empty()) return;
  ++running_;
  PendingJob job = std::move(queue_.front());
  queue_.pop_front();

  const double init = noisy(tuning_.init_delay);
  env()->post_after(init, [this, job = std::move(job)]() mutable {
    if (failed_ || job.epoch != epoch_) return;
    // Service initiation complete: tell the client (the latency series of
    // Figure 5 ends here) and hand over to the solve function.
    CallStartedMsg started;
    started.call_id = job.call_id;
    env()->send(net::Envelope{endpoint(), job.client, kCallStarted,
                              started.encode(), 0, job.trace_id});
    const std::string path = job.profile.path();
    const ServiceEntry* entry = services_.find_by_path(path);
    GC_CHECK(entry != nullptr);  // checked on enqueue
    obs::Tracer::instance().end_span(job.queue_span, env()->now());
    job.queue_span = 0;
    if (obs::tracing()) {
      job.exec_span = obs::Tracer::instance().begin_span(
          env()->now(), "exec:" + path, "sed:" + name_, job.trace_id);
    }
    if constexpr (check::kEnabled) {
      // THE at-most-once oracle: this id reaches a solve function for the
      // first and only time, ever, crashes and retries notwithstanding.
      executed_calls_.add(job.call_id, __FILE__, __LINE__);
    }
    auto ctx =
        std::make_unique<SedContext>(*this, std::move(job), env()->now());
    ctx->work_dir_ = tuning_.work_dir;
    ctx->rng_.reseed(rng_.next_u64());
    ServiceContext& ref = *ctx;
    live_contexts_.push_back(std::move(ctx));
    entry->solve(ref);
  });
}

void Sed::complete_job(PendingJob& job, SimTime started, int solve_status) {
  // A dead SED sends nothing; a job from before a crash-restart belongs
  // to the previous incarnation and must not leak into this one.
  if (failed_ || job.epoch != epoch_) return;
  Profile& profile = job.profile;
  const SimTime finished = env()->now();

  // Persist non-volatile arguments for future reference calls; fresh ids
  // register in the hierarchy catalog and request write-replication.
  // Service-produced outputs arrive without an identity — mint one from
  // the content so the client (the id rides home in the outputs) and the
  // catalog agree on what the data is called.
  if (solve_status == 0) {
    for (int i = 0; i < profile.arg_count(); ++i) {
      ArgValue& arg = profile.arg(i);
      if (arg.desc.persistence == Persistence::kVolatile || !arg.has_value())
        continue;
      if (arg.data_id().empty() && !arg.is_reference()) {
        arg.set_data_id(arg.content_id());
      }
      if (arg.data_id().empty()) continue;
      store_value(arg, tuning_.replication_factor, job.trace_id);
      // DIET semantics: PERSISTENT/STICKY OUT data stays on the server —
      // only the id travels home (PERSISTENT_RETURN ships the value too).
      // The client, or a later request, reaches the bytes through the
      // replica catalog instead of the result message.
      if (i > profile.last_inout() &&
          (arg.desc.persistence == Persistence::kPersistent ||
           arg.desc.persistence == Persistence::kSticky)) {
        arg.make_reference();
      }
    }
  }

  CallResultMsg result;
  result.call_id = job.call_id;
  result.solve_status = solve_status;
  net::Writer w;
  profile.serialize_outputs(w);
  result.outputs = w.take();
  env()->send(net::Envelope{endpoint(), job.client, kCallResult,
                            result.encode(), profile.out_file_bytes(),
                            job.trace_id});

  ++completed_;
  busy_seconds_ += finished - started;
  queued_work_s_ = std::max(0.0, queued_work_s_ - job.comp_estimate_s);
  GC_INVARIANT(running_ > 0, "completing a job with no job running");
  if constexpr (check::kEnabled) live_calls_.remove(job.call_id);
  job_log_.push_back(JobRecord{job.call_id, profile.path(), job.arrived,
                               started, finished, solve_status});
  if (obs::journal_on()) {
    // Keyed by trace id, so it pairs with the client's completion record
    // at export time without anything extra on the wire.
    obs::Journal::instance().sed_phases(job.trace_id, name_, job.arrived,
                                        started, finished);
  }
  obs::Tracer::instance().end_span(job.exec_span, finished);
  job.exec_span = 0;
  if (obs::metrics_on()) {
    auto& m = obs::Metrics::instance();
    const obs::Labels labels = {{"sed", name_}};
    m.counter("diet_sed_jobs_total", labels).inc();
    m.gauge("diet_sed_busy_seconds_total", labels).add(finished - started);
    m.gauge("diet_sed_queue_depth", labels)
        .set(static_cast<double>(queue_length() - 1));  // this job leaves
  }

  if (parent_ != net::kNullEndpoint) {
    JobDoneMsg done;
    done.sed_uid = uid_;
    done.call_id = job.call_id;
    done.busy_seconds = finished - started;
    env()->send(net::Envelope{endpoint(), parent_, kJobDone, done.encode(), 0,
                              job.trace_id});
  }

  --running_;
  // Retire finished contexts on a fresh event: the caller's stack frame
  // still lives inside the context we are about to destroy.
  env()->post_after(0.0, [this]() {
    live_contexts_.erase(
        std::remove_if(live_contexts_.begin(), live_contexts_.end(),
                       [](const std::unique_ptr<ServiceContext>& c) {
                         return static_cast<SedContext*>(c.get())->finished();
                       }),
        live_contexts_.end());
    start_next();
  });
}

}  // namespace gc::diet
