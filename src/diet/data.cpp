#include "diet/data.hpp"

#include <cstdio>
#include <filesystem>
#include <limits>

#include "check/invariant.hpp"

namespace gc::diet {

const char* to_string(DataType t) {
  switch (t) {
    case DataType::kScalar: return "scalar";
    case DataType::kVector: return "vector";
    case DataType::kMatrix: return "matrix";
    case DataType::kString: return "string";
    case DataType::kFile: return "file";
  }
  return "?";
}

const char* to_string(BaseType t) {
  switch (t) {
    case BaseType::kChar: return "char";
    case BaseType::kShort: return "short";
    case BaseType::kInt: return "int";
    case BaseType::kLongInt: return "longint";
    case BaseType::kFloat: return "float";
    case BaseType::kDouble: return "double";
  }
  return "?";
}

const char* to_string(Persistence p) {
  switch (p) {
    case Persistence::kVolatile: return "volatile";
    case Persistence::kPersistentReturn: return "persistent_return";
    case Persistence::kPersistent: return "persistent";
    case Persistence::kSticky: return "sticky";
  }
  return "?";
}

std::size_t base_type_size(BaseType t) {
  switch (t) {
    case BaseType::kChar: return 1;
    case BaseType::kShort: return 2;
    case BaseType::kInt: return 4;
    case BaseType::kLongInt: return 8;
    case BaseType::kFloat: return 4;
    case BaseType::kDouble: return 8;
  }
  return 0;
}

std::uint64_t ArgDesc::element_count() const {
  // rows and cols come off the wire, so a hostile (or corrupted) message
  // can carry a shape whose product wraps 64 bits — and whose honest
  // product, scaled by the element size, would wrap payload_bytes() into
  // a bogus (even negative) modeled volume. Clamp at a ceiling no real
  // argument approaches, chosen so kMaxElements * 8 still fits int64.
  constexpr std::uint64_t kMaxElements =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()) /
      8;
  if (cols != 0 && rows > kMaxElements / cols) {
    GC_INVARIANT(false, "ArgDesc rows*cols overflows; clamped");
    return kMaxElements;
  }
  return rows * cols;
}

std::int64_t ArgDesc::payload_bytes() const {
  if (type == DataType::kFile) return 0;  // files priced from the value
  return static_cast<std::int64_t>(element_count() * base_type_size(base));
}

void ArgDesc::serialize(net::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(static_cast<std::uint8_t>(base));
  w.u8(static_cast<std::uint8_t>(persistence));
  w.u64(rows);
  w.u64(cols);
}

ArgDesc ArgDesc::deserialize(net::Reader& r) {
  ArgDesc d;
  d.type = static_cast<DataType>(r.u8());
  d.base = static_cast<BaseType>(r.u8());
  d.persistence = static_cast<Persistence>(r.u8());
  d.rows = r.u64();
  d.cols = r.u64();
  return d;
}

gc::Status ArgValue::set_string(const std::string& value, Persistence mode) {
  desc.type = DataType::kString;
  desc.base = BaseType::kChar;
  desc.persistence = mode;
  desc.rows = value.size();
  desc.cols = 1;
  data_.assign(value.begin(), value.end());
  file_path_.clear();
  modeled_bytes_ = 0;
  has_value_ = true;
  return Status::ok();
}

gc::Status ArgValue::set_file(const std::string& path, Persistence mode,
                              std::int64_t modeled_bytes) {
  desc.type = DataType::kFile;
  desc.base = BaseType::kChar;
  desc.persistence = mode;
  desc.rows = desc.cols = 1;
  data_.clear();
  file_path_ = path;
  if (modeled_bytes >= 0) {
    modeled_bytes_ = modeled_bytes;
  } else if (!path.empty()) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    modeled_bytes_ = ec ? 0 : static_cast<std::int64_t>(size);
  } else {
    modeled_bytes_ = 0;
  }
  has_value_ = true;
  return Status::ok();
}

gc::Result<std::string> ArgValue::get_string() const {
  if (!has_value_ || desc.type != DataType::kString) {
    return make_error(ErrorCode::kFailedPrecondition, "no string value");
  }
  return std::string(data_.begin(), data_.end());
}

gc::Result<ArgValue::FileRef> ArgValue::get_file() const {
  if (!has_value_ || desc.type != DataType::kFile) {
    return make_error(ErrorCode::kFailedPrecondition, "no file value");
  }
  return FileRef{file_path_, modeled_bytes_};
}

std::int64_t ArgValue::wire_bytes() const {
  if (!has_value_) return 0;
  // References ship the id only: the payload stays on the server.
  if (is_reference_) return static_cast<std::int64_t>(data_id_.size());
  if (desc.type == DataType::kFile) return modeled_bytes_;
  return static_cast<std::int64_t>(data_.size());
}

std::string ArgValue::content_id() const {
  // FNV-1a over the identifying content.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      hash ^= bytes[i];
      hash *= 0x100000001b3ULL;
    }
  };
  mix(&desc.type, sizeof desc.type);
  if (desc.type == DataType::kFile) {
    mix(file_path_.data(), file_path_.size());
    mix(&modeled_bytes_, sizeof modeled_bytes_);
  } else {
    mix(data_.data(), data_.size());
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "d%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

void ArgValue::make_reference() {
  GC_CHECK_MSG(!data_id_.empty(), "reference needs a data id");
  is_reference_ = true;
  has_value_ = true;
  data_.clear();
  file_path_.clear();
  modeled_bytes_ = 0;
}

void ArgValue::materialize_from(const ArgValue& stored) {
  const Persistence mode = desc.persistence;
  const std::string id = data_id_;
  *this = stored;
  desc.persistence = mode;
  data_id_ = id;
  is_reference_ = false;
}

void ArgValue::serialize_value(net::Writer& w) const {
  desc.serialize(w);
  std::uint8_t flags = 0;
  if (has_value_) flags |= 1;
  if (is_reference_) flags |= 2;
  w.u8(flags);
  w.str(data_id_);
  if (!has_value_ || is_reference_) return;
  if (desc.type == DataType::kFile) {
    w.str(file_path_);
    w.i64(modeled_bytes_);
  } else {
    w.bytes(data_);
  }
}

void ArgValue::deserialize_value(net::Reader& r) {
  desc = ArgDesc::deserialize(r);
  const std::uint8_t flags = r.u8();
  has_value_ = (flags & 1) != 0;
  is_reference_ = (flags & 2) != 0;
  data_id_ = r.str();
  data_.clear();
  file_path_.clear();
  modeled_bytes_ = 0;
  if (!has_value_ || is_reference_) return;
  if (desc.type == DataType::kFile) {
    file_path_ = r.str();
    modeled_bytes_ = r.i64();
  } else {
    data_ = r.bytes();
  }
}

}  // namespace gc::diet
