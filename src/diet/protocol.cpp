#include "diet/protocol.hpp"

namespace gc::diet {

namespace {

net::Bytes finish(net::Writer& w) { return w.take(); }

// Dep lists are trailing-optional: written only when non-empty, decoded
// only when bytes remain. A message without persistent inputs therefore
// encodes exactly as it did before the data-management subsystem existed,
// which keeps fault-free volatile runs byte-identical.
void encode_deps(net::Writer& w, const std::vector<DataDep>& deps) {
  if (deps.empty()) return;
  w.u32(static_cast<std::uint32_t>(deps.size()));
  for (const auto& dep : deps) {
    w.str(dep.data_id);
    w.i64(dep.bytes);
  }
}

std::vector<DataDep> decode_deps(net::Reader& r) {
  std::vector<DataDep> deps;
  if (r.remaining() == 0) return deps;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    DataDep dep;
    dep.data_id = r.str();
    dep.bytes = r.i64();
    deps.push_back(std::move(dep));
  }
  return deps;
}

}  // namespace

net::Bytes SedRegisterMsg::encode() const {
  net::Writer w;
  w.u64(sed_uid);
  w.str(name);
  w.f64(host_power);
  w.i32(machines);
  w.u32(static_cast<std::uint32_t>(services.size()));
  for (const auto& s : services) s.serialize(w);
  return finish(w);
}

SedRegisterMsg SedRegisterMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  SedRegisterMsg m;
  m.sed_uid = r.u64();
  m.name = r.str();
  m.host_power = r.f64();
  m.machines = r.i32();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    m.services.push_back(ProfileDesc::deserialize(r));
  }
  return m;
}

net::Bytes AgentRegisterMsg::encode() const {
  net::Writer w;
  w.str(name);
  w.u32(static_cast<std::uint32_t>(services.size()));
  for (const auto& s : services) w.str(s);
  return finish(w);
}

AgentRegisterMsg AgentRegisterMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  AgentRegisterMsg m;
  m.name = r.str();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) m.services.push_back(r.str());
  return m;
}

net::Bytes RequestSubmitMsg::encode() const {
  net::Writer w;
  w.u64(client_request_id);
  desc.serialize(w);
  w.i64(in_bytes);
  encode_deps(w, deps);
  return finish(w);
}

RequestSubmitMsg RequestSubmitMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  RequestSubmitMsg m;
  m.client_request_id = r.u64();
  m.desc = ProfileDesc::deserialize(r);
  m.in_bytes = r.i64();
  m.deps = decode_deps(r);
  return m;
}

net::Bytes RequestCollectMsg::encode() const {
  net::Writer w;
  w.u64(request_key);
  desc.serialize(w);
  w.i64(in_bytes);
  w.f64(timeout_s);
  // The federation section is trailing-optional as a unit. Intra-hierarchy
  // collects (origin/ttl both zero) keep the exact pre-federation bytes;
  // federated ones always write the dep count — even 0 — so the decoder
  // can tell "empty deps + federation section" from "deps only".
  if (origin_uid == 0 && ttl == 0) {
    encode_deps(w, deps);
  } else {
    w.u32(static_cast<std::uint32_t>(deps.size()));
    for (const auto& dep : deps) {
      w.str(dep.data_id);
      w.i64(dep.bytes);
    }
    w.u32(origin_uid);
    w.u32(ttl);
  }
  return finish(w);
}

RequestCollectMsg RequestCollectMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  RequestCollectMsg m;
  m.request_key = r.u64();
  m.desc = ProfileDesc::deserialize(r);
  m.in_bytes = r.i64();
  m.timeout_s = r.f64();
  m.deps = decode_deps(r);
  if (r.remaining() >= 8) {
    m.origin_uid = r.u32();
    m.ttl = r.u32();
  }
  return m;
}

net::Bytes CandidatesMsg::encode() const {
  net::Writer w;
  w.u64(request_key);
  sched::serialize_candidates(w, candidates);
  return finish(w);
}

CandidatesMsg CandidatesMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  CandidatesMsg m;
  m.request_key = r.u64();
  m.candidates = sched::deserialize_candidates(r);
  return m;
}

net::Bytes RequestReplyMsg::encode() const {
  net::Writer w;
  w.u64(client_request_id);
  w.u8(found ? 1 : 0);
  if (found) chosen.serialize(w);
  // Trailing-optional, like the dep lists: absent when empty.
  if (!available_ids.empty()) {
    w.u32(static_cast<std::uint32_t>(available_ids.size()));
    for (const auto& id : available_ids) w.str(id);
  }
  return finish(w);
}

RequestReplyMsg RequestReplyMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  RequestReplyMsg m;
  m.client_request_id = r.u64();
  m.found = r.u8() != 0;
  if (m.found) m.chosen = sched::Candidate::deserialize(r);
  if (r.remaining() > 0) {
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      m.available_ids.push_back(r.str());
    }
  }
  return m;
}

net::Bytes CallDataMsg::encode() const {
  net::Writer w;
  w.u64(call_id);
  w.str(path);
  w.i32(last_in);
  w.i32(last_inout);
  w.i32(last_out);
  w.bytes(inputs);
  return finish(w);
}

CallDataMsg CallDataMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  CallDataMsg m;
  m.call_id = r.u64();
  m.path = r.str();
  m.last_in = r.i32();
  m.last_inout = r.i32();
  m.last_out = r.i32();
  m.inputs = r.bytes();
  return m;
}

net::Bytes CallStartedMsg::encode() const {
  net::Writer w;
  w.u64(call_id);
  return finish(w);
}

CallStartedMsg CallStartedMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  CallStartedMsg m;
  m.call_id = r.u64();
  return m;
}

net::Bytes CallResultMsg::encode() const {
  net::Writer w;
  w.u64(call_id);
  w.i32(solve_status);
  w.bytes(outputs);
  return finish(w);
}

CallResultMsg CallResultMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  CallResultMsg m;
  m.call_id = r.u64();
  m.solve_status = r.i32();
  m.outputs = r.bytes();
  return m;
}

net::Bytes JobDoneMsg::encode() const {
  net::Writer w;
  w.u64(sed_uid);
  w.u64(call_id);
  w.f64(busy_seconds);
  return finish(w);
}

JobDoneMsg JobDoneMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  JobDoneMsg m;
  m.sed_uid = r.u64();
  m.call_id = r.u64();
  m.busy_seconds = r.f64();
  return m;
}

net::Bytes HeartbeatMsg::encode() const {
  net::Writer w;
  w.u64(uid);
  w.u64(seq);
  return finish(w);
}

HeartbeatMsg HeartbeatMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  HeartbeatMsg m;
  m.uid = r.u64();
  m.seq = r.u64();
  return m;
}

net::Bytes PeerAnnounceMsg::encode() const {
  net::Writer w;
  w.u32(ma_uid);
  w.str(name);
  w.u32(static_cast<std::uint32_t>(services.size()));
  for (const auto& s : services) w.str(s);
  return finish(w);
}

PeerAnnounceMsg PeerAnnounceMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  PeerAnnounceMsg m;
  m.ma_uid = r.u32();
  m.name = r.str();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) m.services.push_back(r.str());
  return m;
}

net::Bytes PeerCandidatesMsg::encode() const {
  net::Writer w;
  w.u64(request_key);
  w.u32(ma_uid);
  sched::serialize_candidates(w, candidates);
  return finish(w);
}

PeerCandidatesMsg PeerCandidatesMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  PeerCandidatesMsg m;
  m.request_key = r.u64();
  m.ma_uid = r.u32();
  m.candidates = sched::deserialize_candidates(r);
  return m;
}

net::Bytes LoadReportMsg::encode() const {
  net::Writer w;
  w.u64(sed_uid);
  w.f64(queue_length);
  w.f64(queued_work_s);
  w.u64(jobs_completed);
  return finish(w);
}

LoadReportMsg LoadReportMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  LoadReportMsg m;
  m.sed_uid = r.u64();
  m.queue_length = r.f64();
  m.queued_work_s = r.f64();
  m.jobs_completed = r.u64();
  return m;
}

}  // namespace gc::diet
