#include "diet/deployment.hpp"

#include "common/log.hpp"
#include "sched/policy.hpp"

namespace gc::diet {

Deployment::Deployment(net::Env& env, naming::Registry& registry,
                       ServiceTable& services, const DeploymentSpec& spec)
    : sed_uid_base_(spec.sed_uid_base) {
  Rng seeder(spec.seed);

  auto ma_policy = sched::make_policy(spec.policy);
  GC_CHECK_MSG(ma_policy != nullptr, "unknown policy: " + spec.policy);
  ma_ = std::make_unique<Agent>(Agent::Kind::kMaster, spec.ma_name,
                                std::move(ma_policy), spec.agent_tuning,
                                seeder.next_u64());
  if (spec.ma_uid != 0) {
    ma_->set_federation(spec.ma_uid, spec.request_key_base);
  }
  env.attach(*ma_, spec.ma_node);
  registry.rebind(spec.ma_name, ma_->endpoint());

  // SEDs first (so LAs can hand them a parent immediately after attach).
  seds_.reserve(spec.seds.size());
  for (std::size_t i = 0; i < spec.seds.size(); ++i) {
    const auto& sed_spec = spec.seds[i];
    SedTuning tuning = spec.sed_tuning;
    if (sed_spec.heartbeat_period >= 0.0) {
      tuning.heartbeat_period = sed_spec.heartbeat_period;
    }
    auto sed = std::make_unique<Sed>(
        /*uid=*/spec.sed_uid_base + i + 1, sed_spec.name, services,
        sed_spec.host_power, sed_spec.machines, std::move(tuning),
        seeder.next_u64());
    env.attach(*sed, sed_spec.node);
    registry.rebind(sed_spec.name, sed->endpoint());
    seds_.push_back(std::move(sed));
  }

  las_.reserve(spec.las.size());
  for (const auto& la_spec : spec.las) {
    auto la_policy = sched::make_policy(spec.policy);
    auto la = std::make_unique<Agent>(Agent::Kind::kLocal, la_spec.name,
                                      std::move(la_policy), spec.agent_tuning,
                                      seeder.next_u64());
    env.attach(*la, la_spec.node);
    registry.rebind(la_spec.name, la->endpoint());
    la->register_at(ma_->endpoint());
    for (const int sed_index : la_spec.sed_indexes) {
      GC_CHECK(sed_index >= 0 &&
               static_cast<std::size_t>(sed_index) < seds_.size());
      seds_[static_cast<std::size_t>(sed_index)]->register_at(la->endpoint());
    }
    las_.push_back(std::move(la));
  }
}

Sed* Deployment::sed_by_uid(std::uint64_t uid) {
  if (uid <= sed_uid_base_ || uid > sed_uid_base_ + seds_.size()) {
    return nullptr;
  }
  return seds_[uid - sed_uid_base_ - 1].get();
}

Federation::Federation(net::Env& env, naming::Registry& registry,
                       ServiceTable& services,
                       std::vector<DeploymentSpec> shards) {
  // The replicated table vector must be fully built BEFORE `shards` is
  // moved into init's parameter: as sibling arguments the two would be
  // indeterminately sequenced and the size read could see an empty,
  // already-moved-from vector.
  std::vector<ServiceTable*> tables(shards.size(), &services);
  init(env, registry, std::move(tables), std::move(shards));
}

Federation::Federation(net::Env& env, naming::Registry& registry,
                       std::vector<ServiceTable*> services,
                       std::vector<DeploymentSpec> shards) {
  init(env, registry, std::move(services), std::move(shards));
}

void Federation::init(net::Env& env, naming::Registry& registry,
                      std::vector<ServiceTable*> services,
                      std::vector<DeploymentSpec> shards) {
  GC_CHECK_MSG(!shards.empty(), "a federation needs at least one shard");
  GC_CHECK_MSG(services.size() == shards.size(),
               "one service table per shard");
  // Assign the disjoint id spaces: SED uids are dense across shards (so a
  // federation-wide SED index maps to a uid exactly like a single
  // deployment's), MA uids count from 1, request keys get the uid in the
  // top bits so no two shards can mint the same key.
  std::uint64_t uid_base = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    shards[i].sed_uid_base = uid_base;
    uid_base += shards[i].seds.size();
    shards[i].ma_uid = static_cast<std::uint32_t>(i + 1);
    shards[i].request_key_base = static_cast<std::uint64_t>(i + 1) << 48;
  }
  shards_.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    shards_.push_back(
        std::make_unique<Deployment>(env, registry, *services[i], shards[i]));
  }
  // Full mesh: every MA learns every other MA. connect order is spec
  // order, so peer fan-out order is deterministic.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    for (std::size_t j = 0; j < shards_.size(); ++j) {
      if (i == j) continue;
      shards_[i]->ma().connect_peer(shards_[j]->ma().endpoint());
    }
  }
}

std::size_t Federation::sed_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->sed_count();
  return n;
}

Sed& Federation::sed(std::size_t i) {
  for (auto& shard : shards_) {
    if (i < shard->sed_count()) return shard->sed(i);
    i -= shard->sed_count();
  }
  GC_CHECK_MSG(false, "federation SED index out of range");
  return shards_.front()->sed(0);  // unreachable
}

std::size_t Federation::la_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->la_count();
  return n;
}

Agent& Federation::la(std::size_t i) {
  for (auto& shard : shards_) {
    if (i < shard->la_count()) return shard->la(i);
    i -= shard->la_count();
  }
  GC_CHECK_MSG(false, "federation LA index out of range");
  return shards_.front()->la(0);  // unreachable
}

Sed* Federation::sed_by_uid(std::uint64_t uid) {
  for (auto& shard : shards_) {
    if (Sed* sed = shard->sed_by_uid(uid)) return sed;
  }
  return nullptr;
}

}  // namespace gc::diet
