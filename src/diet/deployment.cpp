#include "diet/deployment.hpp"

#include "common/log.hpp"
#include "sched/policy.hpp"

namespace gc::diet {

Deployment::Deployment(net::Env& env, naming::Registry& registry,
                       ServiceTable& services, const DeploymentSpec& spec) {
  Rng seeder(spec.seed);

  auto ma_policy = sched::make_policy(spec.policy);
  GC_CHECK_MSG(ma_policy != nullptr, "unknown policy: " + spec.policy);
  ma_ = std::make_unique<Agent>(Agent::Kind::kMaster, spec.ma_name,
                                std::move(ma_policy), spec.agent_tuning,
                                seeder.next_u64());
  env.attach(*ma_, spec.ma_node);
  registry.rebind(spec.ma_name, ma_->endpoint());

  // SEDs first (so LAs can hand them a parent immediately after attach).
  seds_.reserve(spec.seds.size());
  for (std::size_t i = 0; i < spec.seds.size(); ++i) {
    const auto& sed_spec = spec.seds[i];
    SedTuning tuning = spec.sed_tuning;
    if (sed_spec.heartbeat_period >= 0.0) {
      tuning.heartbeat_period = sed_spec.heartbeat_period;
    }
    auto sed = std::make_unique<Sed>(
        /*uid=*/static_cast<std::uint64_t>(i + 1), sed_spec.name, services,
        sed_spec.host_power, sed_spec.machines, std::move(tuning),
        seeder.next_u64());
    env.attach(*sed, sed_spec.node);
    registry.rebind(sed_spec.name, sed->endpoint());
    seds_.push_back(std::move(sed));
  }

  las_.reserve(spec.las.size());
  for (const auto& la_spec : spec.las) {
    auto la_policy = sched::make_policy(spec.policy);
    auto la = std::make_unique<Agent>(Agent::Kind::kLocal, la_spec.name,
                                      std::move(la_policy), spec.agent_tuning,
                                      seeder.next_u64());
    env.attach(*la, la_spec.node);
    registry.rebind(la_spec.name, la->endpoint());
    la->register_at(ma_->endpoint());
    for (const int sed_index : la_spec.sed_indexes) {
      GC_CHECK(sed_index >= 0 &&
               static_cast<std::size_t>(sed_index) < seds_.size());
      seds_[static_cast<std::size_t>(sed_index)]->register_at(la->endpoint());
    }
    las_.push_back(std::move(la));
  }
}

Sed* Deployment::sed_by_uid(std::uint64_t uid) {
  if (uid == 0 || uid > seds_.size()) return nullptr;
  return seds_[uid - 1].get();
}

}  // namespace gc::diet
