// DIET configuration files.
//
// Real DIET components read small "key = value" files (client.cfg names the
// MA to contact, a SED's cfg names its parent LA, ...). Section 4.3.1:
// diet_initialize "parses the configuration file given as the first
// argument, to set all options and get a reference to the DIET Master
// Agent". Same format here; '#' starts a comment.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace gc::diet {

class Config {
 public:
  Config() = default;

  static gc::Result<Config> load(const std::string& path);
  static Config parse(std::string_view text);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   std::string fallback) const;
  [[nodiscard]] gc::Result<long> get_int(const std::string& key) const;
  [[nodiscard]] gc::Result<double> get_double(const std::string& key) const;

  void set(const std::string& key, const std::string& value);
  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// Serializes back to "key = value" lines (stable order).
  [[nodiscard]] std::string to_string() const;

 private:
  // Keys are stored lower-cased; lookups are case-insensitive like DIET's.
  std::map<std::string, std::string> values_;
};

}  // namespace gc::diet
