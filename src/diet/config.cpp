#include "diet/config.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace gc::diet {

gc::Result<Config> Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return make_error(ErrorCode::kIoError, "cannot open config: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

Config Config::parse(std::string_view text) {
  Config config;
  for (const auto& raw_line : split(text, '\n')) {
    std::string_view line = raw_line;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string key = to_lower(trim(line.substr(0, eq)));
    const std::string value{trim(line.substr(eq + 1))};
    if (!key.empty()) config.values_[key] = value;
  }
  return config;
}

std::optional<std::string> Config::get(const std::string& key) const {
  auto it = values_.find(to_lower(key));
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_or(const std::string& key,
                           std::string fallback) const {
  auto v = get(key);
  return v ? *v : std::move(fallback);
}

gc::Result<long> Config::get_int(const std::string& key) const {
  auto v = get(key);
  if (!v) return make_error(ErrorCode::kNotFound, "missing key: " + key);
  char* end = nullptr;
  const long value = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') {
    return make_error(ErrorCode::kInvalidArgument,
                      "not an integer: " + key + " = " + *v);
  }
  return value;
}

gc::Result<double> Config::get_double(const std::string& key) const {
  auto v = get(key);
  if (!v) return make_error(ErrorCode::kNotFound, "missing key: " + key);
  char* end = nullptr;
  const double value = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') {
    return make_error(ErrorCode::kInvalidArgument,
                      "not a number: " + key + " = " + *v);
  }
  return value;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[to_lower(key)] = value;
}

std::string Config::to_string() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  }
  return out;
}

}  // namespace gc::diet
