#include "diet/profile.hpp"

namespace gc::diet {

ProfileDesc::ProfileDesc(std::string path, int last_in, int last_inout,
                         int last_out)
    : path_(std::move(path)),
      last_in_(last_in),
      last_inout_(last_inout),
      last_out_(last_out) {
  GC_CHECK_MSG(valid(), "invalid profile markers for " + path_);
  args_.resize(static_cast<std::size_t>(arg_count()));
}

bool ProfileDesc::valid() const {
  return last_in_ >= -1 && last_in_ <= last_inout_ &&
         last_inout_ <= last_out_ && last_out_ >= 0;
}

bool ProfileDesc::matches(const ProfileDesc& other) const {
  if (path_ != other.path_ || last_in_ != other.last_in_ ||
      last_inout_ != other.last_inout_ || last_out_ != other.last_out_) {
    return false;
  }
  for (int i = 0; i < arg_count(); ++i) {
    if (!arg(i).matches(other.arg(i))) return false;
  }
  return true;
}

void ProfileDesc::serialize(net::Writer& w) const {
  w.str(path_);
  w.i32(last_in_);
  w.i32(last_inout_);
  w.i32(last_out_);
  for (const auto& a : args_) a.serialize(w);
}

ProfileDesc ProfileDesc::deserialize(net::Reader& r) {
  ProfileDesc d;
  d.path_ = r.str();
  d.last_in_ = r.i32();
  d.last_inout_ = r.i32();
  d.last_out_ = r.i32();
  if (!r.ok() || !d.valid()) return ProfileDesc();
  d.args_.resize(static_cast<std::size_t>(d.arg_count()));
  for (auto& a : d.args_) a = ArgDesc::deserialize(r);
  return d;
}

Profile::Profile(std::string path, int last_in, int last_inout, int last_out)
    : path_(std::move(path)),
      last_in_(last_in),
      last_inout_(last_inout),
      last_out_(last_out) {
  GC_CHECK_MSG(last_in >= -1 && last_in <= last_inout &&
                   last_inout <= last_out && last_out >= 0,
               "invalid profile markers for " + path_);
  args_.resize(static_cast<std::size_t>(arg_count()));
}

Direction Profile::direction(int index) const {
  GC_CHECK(index >= 0 && index < arg_count());
  if (index <= last_in_) return Direction::kIn;
  if (index <= last_inout_) return Direction::kInOut;
  return Direction::kOut;
}

ProfileDesc Profile::desc() const {
  ProfileDesc d(path_, last_in_, last_inout_, last_out_);
  for (int i = 0; i < arg_count(); ++i) d.arg(i) = arg(i).desc;
  return d;
}

bool Profile::inputs_complete() const {
  for (int i = 0; i <= last_inout_; ++i) {
    if (!arg(i).has_value()) return false;
  }
  return true;
}

std::int64_t Profile::in_bytes() const {
  std::int64_t total = 0;
  for (int i = 0; i <= last_inout_; ++i) total += arg(i).wire_bytes();
  return total;
}

std::int64_t Profile::out_bytes() const {
  std::int64_t total = 0;
  for (int i = last_in_ + 1; i < arg_count(); ++i) {
    total += arg(i).wire_bytes();
  }
  return total;
}

std::int64_t Profile::in_file_bytes() const {
  std::int64_t total = 0;
  for (int i = 0; i <= last_inout_; ++i) {
    const ArgValue& a = arg(i);
    if (a.has_value() && a.desc.type == DataType::kFile) {
      total += a.modeled_bytes();
    }
  }
  return total;
}

std::int64_t Profile::out_file_bytes() const {
  std::int64_t total = 0;
  for (int i = last_in_ + 1; i < arg_count(); ++i) {
    const ArgValue& a = arg(i);
    if (a.has_value() && a.desc.type == DataType::kFile) {
      total += a.modeled_bytes();
    }
  }
  return total;
}

void Profile::serialize_inputs(net::Writer& w) const {
  for (int i = 0; i <= last_inout_; ++i) arg(i).serialize_value(w);
}

Profile Profile::deserialize_inputs(const std::string& path, int last_in,
                                    int last_inout, int last_out,
                                    net::Reader& r) {
  Profile p(path, last_in, last_inout, last_out);
  for (int i = 0; i <= last_inout; ++i) p.arg(i).deserialize_value(r);
  return p;
}

void Profile::serialize_outputs(net::Writer& w) const {
  for (int i = last_in_ + 1; i < arg_count(); ++i) {
    arg(i).serialize_value(w);
  }
}

void Profile::merge_outputs(net::Reader& r) {
  for (int i = last_in_ + 1; i < arg_count(); ++i) {
    arg(i).deserialize_value(r);
  }
}

}  // namespace gc::diet
