// Paper-flavoured DIET C API.
//
// Sections 4.2/4.3 show client and server code against DIET_client.h /
// DIET_server.h. This header reproduces that surface — diet_initialize,
// diet_profile_alloc, diet_scalar_set/get, diet_file_set/get, diet_call,
// diet_profile_desc_alloc, diet_generic_desc_set, diet_service_table_*,
// diet_SeD, and the GridRPC grpc_* aliases — as a thin veneer over the
// C++ core, so the examples can be written exactly like the paper's
// listings.
//
// Process binding: the in-process deployment (Env + Registry) is bound
// once with capi::bind_process(); diet_initialize then resolves the MA
// named in the configuration file, exactly as the real library resolves
// it through omniORB.
#pragma once

#include <cstddef>

#include "diet/client.hpp"
#include "diet/profile.hpp"
#include "diet/sed.hpp"
#include "diet/service.hpp"
#include "naming/registry.hpp"
#include "net/realenv.hpp"

// --- DIET-style type names -------------------------------------------------

using diet_profile_t = gc::diet::Profile;
using diet_profile_desc_t = gc::diet::ProfileDesc;
using diet_arg_t = gc::diet::ArgValue;
using diet_arg_desc_t = gc::diet::ArgDesc;

enum diet_persistence_mode_t {
  DIET_VOLATILE = 0,
  DIET_PERSISTENT_RETURN = 1,
  DIET_PERSISTENT = 2,
  DIET_STICKY = 3,
};

enum diet_base_type_t {
  DIET_CHAR = 0,
  DIET_SHORT = 1,
  DIET_INT = 2,
  DIET_LONGINT = 3,
  DIET_FLOAT = 4,
  DIET_DOUBLE = 5,
};

enum diet_data_type_t {
  DIET_SCALAR = 0,
  DIET_VECTOR = 1,
  DIET_MATRIX = 2,
  DIET_STRING = 3,
  DIET_FILE = 4,
};

/// Works on both diet_profile_t (values) and diet_profile_desc_t
/// (descriptions), as in DIET.
#define diet_parameter(profile_ptr, index) (&(profile_ptr)->arg(index))

using diet_solve_t = int (*)(diet_profile_t*);

namespace gc::diet::capi {
/// Binds the in-process deployment this C API talks to. `client_node` is
/// where diet_initialize attaches its client.
void bind_process(net::RealEnv& env, naming::Registry& registry,
                  net::NodeId client_node);
void unbind_process();
}  // namespace gc::diet::capi

// --- client side (DIET_client.h) --------------------------------------------

/// Parses the configuration file (MAName = ...) and connects to the MA.
int diet_initialize(const char* config_file, int argc, char** argv);
int diet_finalize();

diet_profile_t* diet_profile_alloc(const char* path, int last_in,
                                   int last_inout, int last_out);
int diet_profile_free(diet_profile_t* profile);

int diet_scalar_set(diet_arg_t* arg, const void* value,
                    diet_persistence_mode_t mode, diet_base_type_t base);
/// `value` receives a pointer into the profile's storage (DIET semantics:
/// OUT memory is allocated by DIET; free via diet_free_data / profile
/// free).
int diet_scalar_get(diet_arg_t* arg, void* value_out,
                    diet_persistence_mode_t* mode);
int diet_string_set(diet_arg_t* arg, const char* value,
                    diet_persistence_mode_t mode);
int diet_file_set(diet_arg_t* arg, diet_persistence_mode_t mode,
                  const char* path);
/// Paper usage: diet_file_get(diet_parameter(p,7), NULL, &size, &path).
int diet_file_get(diet_arg_t* arg, diet_persistence_mode_t* mode,
                  std::size_t* size, char** path);

/// Synchronous GridRPC call through the bound session.
int diet_call(diet_profile_t* profile);

// GridRPC aliases ("all diet_ functions are duplicated with grpc_
// functions", Section 4.3.1) — including the asynchronous call family of
// the GridRPC definition the paper cites.
int grpc_initialize(const char* config_file);
int grpc_finalize();
int grpc_call(diet_profile_t* profile);

/// Asynchronous request identifier (grpc_sessionid_t in the standard).
using diet_reqID_t = std::uint64_t;

/// Starts a call and returns immediately; *request_id identifies it.
int diet_call_async(diet_profile_t* profile, diet_reqID_t* request_id);
/// Blocks until the given request completes; returns its solve status
/// (0 = success). The profile passed to diet_call_async holds the merged
/// OUT/INOUT values afterwards.
int diet_wait(diet_reqID_t request_id);
/// Blocks until ALL outstanding async requests of this session complete;
/// returns 0 iff every one succeeded.
int diet_wait_all();
/// Blocks until ANY outstanding request completes; its id is stored in
/// *request_id.
int diet_wait_any(diet_reqID_t* request_id);
/// Non-blocking completion probe: 0 = completed, 1 = still running,
/// -1 = unknown id.
int diet_probe(diet_reqID_t request_id);
/// Forgets a completed request (frees its bookkeeping).
int diet_cancel(diet_reqID_t request_id);

int grpc_call_async(diet_profile_t* profile, diet_reqID_t* request_id);
int grpc_wait(diet_reqID_t request_id);
int grpc_wait_all();
int grpc_wait_any(diet_reqID_t* request_id);
int grpc_probe(diet_reqID_t request_id);

// --- server side (DIET_server.h) --------------------------------------------

diet_profile_desc_t* diet_profile_desc_alloc(const char* path, int last_in,
                                             int last_inout, int last_out);
int diet_profile_desc_free(diet_profile_desc_t* desc);
int diet_generic_desc_set(diet_arg_desc_t* arg, diet_data_type_t type,
                          diet_base_type_t base);

int diet_service_table_init(int max_size);
int diet_service_table_add(const diet_profile_desc_t* profile,
                           const void* convertor, diet_solve_t solve);
void diet_print_service_table();

/// Launches a SED on the bound deployment: reads parentName from the
/// configuration file, registers the service table, and returns. (The
/// real diet_SeD never returns; in-process the Env dispatcher plays that
/// role — see DESIGN.md.)
int diet_SeD(const char* config_file, int argc, char** argv);

/// The solve-side result setter used in Section 4.2.3's listing.
int diet_file_desc_set(diet_arg_t* arg, char* path);

/// "Diet cannot guess how long the user needs these data for, so it lets
/// him/her free the memory with diet_free_data()" (Section 4.2.1).
int diet_free_data(diet_arg_t* arg);
