#include "diet/agent.hpp"

#include <algorithm>
#include <utility>

#include "check/invariant.hpp"
#include "check/mutation.hpp"
#include "common/log.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace gc::diet {

Agent::Agent(Kind kind, std::string name,
             std::unique_ptr<sched::Policy> policy, AgentTuning tuning,
             std::uint64_t seed)
    : kind_(kind),
      name_(std::move(name)),
      policy_(std::move(policy)),
      tuning_(tuning),
      rng_(seed) {
  GC_CHECK(policy_ != nullptr);
}

void Agent::set_policy(std::unique_ptr<sched::Policy> policy) {
  GC_CHECK(policy != nullptr);
  policy_ = std::move(policy);
}

void Agent::register_at(net::Endpoint parent) {
  GC_CHECK_MSG(kind_ == Kind::kLocal, "only LAs register at a parent");
  parent_ = parent;
  propagate_services();
  if (tuning_.heartbeat_period > 0.0) arm_heartbeat();
}

void Agent::arm_heartbeat() {
  const std::uint64_t epoch = epoch_;
  env()->post_after_as(endpoint(), tuning_.heartbeat_period, [this, epoch]() {
    if (epoch != epoch_ || failed_ || parent_ == net::kNullEndpoint) return;
    HeartbeatMsg beat;
    beat.seq = ++heartbeat_seq_;
    env()->send(
        net::Envelope{endpoint(), parent_, kHeartbeat, beat.encode(), 0});
    arm_heartbeat();
  });
}

void Agent::fail() {
  failed_ = true;
  ++epoch_;
  env()->detach(endpoint());
}

void Agent::shutdown() {
  ++epoch_;
  for (auto& child : children_) {
    if (child.hb_timer != 0) {
      env()->cancel_timer(child.hb_timer);
      child.hb_timer = 0;
    }
  }
  for (auto& peer : peers_) {
    if (peer.hb_timer != 0) {
      env()->cancel_timer(peer.hb_timer);
      peer.hb_timer = 0;
    }
  }
}

void Agent::set_federation(std::uint32_t ma_uid,
                           std::uint64_t request_key_base) {
  GC_CHECK_MSG(kind_ == Kind::kMaster, "only MAs federate");
  GC_CHECK_MSG(ma_uid != 0, "federation uid 0 is reserved for 'unfederated'");
  ma_uid_ = ma_uid;
  next_key_ = request_key_base + 1;
}

void Agent::connect_peer(net::Endpoint peer_endpoint) {
  GC_CHECK_MSG(kind_ == Kind::kMaster, "only MAs federate");
  GC_CHECK_MSG(ma_uid_ != 0, "set_federation() before connect_peer()");
  if (find_peer(peer_endpoint) == nullptr) {
    Peer peer;
    peer.endpoint = peer_endpoint;
    peers_.push_back(std::move(peer));
    arm_peer_deadline(peer_endpoint);
  }
  // Always announce, even if the peer was already learned passively from
  // ITS announce — it still needs ours.
  PeerAnnounceMsg msg;
  msg.ma_uid = ma_uid_;
  msg.name = name_;
  msg.services.assign(services_.begin(), services_.end());
  env()->send(net::Envelope{endpoint(), peer_endpoint, kPeerAnnounce,
                            msg.encode(), 0});
  if (tuning_.heartbeat_period > 0.0 && !peer_beat_armed_) {
    peer_beat_armed_ = true;
    arm_peer_beat();
  }
}

Agent::Peer* Agent::find_peer(net::Endpoint endpoint) {
  for (auto& peer : peers_) {
    if (peer.endpoint == endpoint) return &peer;
  }
  return nullptr;
}

void Agent::arm_peer_beat() {
  const std::uint64_t epoch = epoch_;
  env()->post_after_as(endpoint(), tuning_.heartbeat_period, [this, epoch]() {
    if (epoch != epoch_ || failed_) return;
    HeartbeatMsg beat;
    beat.seq = ++heartbeat_seq_;
    const net::Bytes payload = beat.encode();
    // Dead-marked peers are beaten too: our beacons are what revive us in
    // THEIR watchdog once a partition ends.
    for (const auto& peer : peers_) {
      env()->send(
          net::Envelope{endpoint(), peer.endpoint, kHeartbeat, payload, 0});
    }
    arm_peer_beat();
  });
}

void Agent::arm_peer_deadline(net::Endpoint peer_endpoint) {
  if (tuning_.heartbeat_timeout <= 0.0) return;
  Peer* peer = find_peer(peer_endpoint);
  if (peer == nullptr) return;
  if (peer->hb_timer != 0) env()->cancel_timer(peer->hb_timer);
  peer->hb_timer = env()->post_after_as(
      endpoint(), tuning_.heartbeat_timeout, [this, peer_endpoint]() {
        if (failed_) return;
        Peer* p = find_peer(peer_endpoint);
        if (p == nullptr || !p->alive) return;
        p->alive = false;
        p->hb_timer = 0;
        ++peer_stats_.evictions;
        GC_WARN << "agent " << name_ << ": no heartbeat from peer MA "
                << (p->name.empty() ? "(unannounced)" : p->name) << " for "
                << tuning_.heartbeat_timeout << "s, ejecting the shard";
        if (obs::tracing()) {
          obs::Tracer::instance().instant(env()->now(), "peer-dead:" + p->name,
                                          "agent:" + name_, 0);
        }
        if (obs::metrics_on()) {
          obs::Metrics::instance()
              .counter("diet_federation_peer_evictions_total",
                       {{"agent", name_}})
              .inc();
        }
      });
}

void Agent::announce_to_peers() {
  PeerAnnounceMsg msg;
  msg.ma_uid = ma_uid_;
  msg.name = name_;
  msg.services.assign(services_.begin(), services_.end());
  const net::Bytes payload = msg.encode();
  for (const auto& peer : peers_) {
    env()->send(
        net::Envelope{endpoint(), peer.endpoint, kPeerAnnounce, payload, 0});
  }
}

void Agent::handle_peer_announce(const net::Envelope& envelope) {
  GC_CHECK_MSG(kind_ == Kind::kMaster, "peer announces go MA to MA");
  const PeerAnnounceMsg msg = PeerAnnounceMsg::decode(envelope.payload);
  Peer* peer = find_peer(envelope.from);
  if (peer == nullptr) {
    // The peer announced before our own connect_peer() ran (federation
    // wiring is symmetric but not atomic); learn it now.
    Peer p;
    p.endpoint = envelope.from;
    peers_.push_back(std::move(p));
    peer = &peers_.back();
    arm_peer_deadline(envelope.from);
  }
  peer->uid = msg.ma_uid;
  peer->name = msg.name;
  peer->services.clear();
  peer->services.insert(msg.services.begin(), msg.services.end());
}

Agent::Child* Agent::find_child(net::Endpoint endpoint) {
  for (auto& child : children_) {
    if (child.endpoint == endpoint) return &child;
  }
  return nullptr;
}

void Agent::arm_child_deadline(net::Endpoint child_endpoint) {
  if (tuning_.heartbeat_timeout <= 0.0) return;
  Child* child = find_child(child_endpoint);
  if (child == nullptr) return;
  if (child->hb_timer != 0) env()->cancel_timer(child->hb_timer);
  child->hb_timer =
      env()->post_after_as(endpoint(), tuning_.heartbeat_timeout, [this, child_endpoint]() {
        if (failed_) return;
        // The endpoint is the child's identity at arm time: if it
        // re-registered since (crash-restart), this deadline is stale.
        Child* c = find_child(child_endpoint);
        if (c == nullptr || !c->alive) return;
        c->alive = false;
        c->hb_timer = 0;
        ++heartbeat_evictions_;
        GC_WARN << "agent " << name_ << ": no heartbeat from " << c->name
                << " for " << tuning_.heartbeat_timeout
                << "s, marking it dead";
        // A dead SED's replicas are unreachable: drop them so locate
        // answers and locality pricing never point at it. (A dead LA's
        // SEDs are still alive and directly reachable — keep theirs.)
        // Mutation seam kKeepReplicasOnEviction re-introduces the leak
        // where eviction forgot this cleanup.
        if (c->is_sed &&
            !check::mutation_enabled(
                check::Mutation::kKeepReplicasOnEviction)) {
          drop_sed_replicas(c->sed_uid);
        }
        if (obs::tracing()) {
          obs::Tracer::instance().instant(env()->now(), "hb-dead:" + c->name,
                                          "agent:" + name_, 0);
        }
        if (obs::metrics_on()) {
          obs::Metrics::instance()
              .counter("diet_agent_hb_evictions_total", {{"agent", name_}})
              .inc();
        }
      });
}

void Agent::handle_heartbeat(const net::Envelope& envelope) {
  Child* child = find_child(envelope.from);
  if (child == nullptr) {
    // Not a child: maybe a peer MA's federation beacon.
    Peer* peer = find_peer(envelope.from);
    if (peer == nullptr) return;  // from an evicted or unknown sender
    if (!peer->alive) {
      peer->alive = true;
      GC_WARN << "agent " << name_ << ": heartbeat from ejected peer MA "
              << peer->name << ", re-admitting the shard";
      if (obs::tracing()) {
        obs::Tracer::instance().instant(env()->now(),
                                        "peer-revive:" + peer->name,
                                        "agent:" + name_, 0);
      }
    }
    arm_peer_deadline(envelope.from);
    return;
  }
  if (!child->alive) {
    // A heartbeat from a dead-marked child heals it: either the beacons
    // were merely dropped, or the partition around it ended.
    child->alive = true;
    GC_WARN << "agent " << name_ << ": heartbeat from dead-marked "
            << child->name << ", reviving it";
    if (obs::tracing()) {
      obs::Tracer::instance().instant(env()->now(),
                                      "hb-revive:" + child->name,
                                      "agent:" + name_, 0);
    }
  }
  child->consecutive_timeouts = 0;
  arm_child_deadline(envelope.from);
}

void Agent::propagate_services() {
  // The MA's analogue of telling a parent: keep every peer MA's view of
  // this shard's services current (runs on the same triggers — child
  // registration and eviction).
  if (kind_ == Kind::kMaster && !peers_.empty()) announce_to_peers();
  if (parent_ == net::kNullEndpoint) return;
  AgentRegisterMsg msg;
  msg.name = name_;
  msg.services.assign(services_.begin(), services_.end());
  env()->send(
      net::Envelope{endpoint(), parent_, kAgentRegister, msg.encode(), 0});
}

double Agent::noisy(double base) {
  if (tuning_.delay_noise_cv <= 0.0 || base <= 0.0) return base;
  return rng_.lognormal_with_mean(base, tuning_.delay_noise_cv);
}

void Agent::charge_cpu(double cost) {
  const double now = env()->now();
  cpu_busy_until_ = std::max(cpu_busy_until_, now) + cost;
}

void Agent::process_for(double cost, std::function<void()> fn) {
  const double now = env()->now();
  cpu_busy_until_ = std::max(cpu_busy_until_, now) + cost;
  env()->post_after(cpu_busy_until_ - now, std::move(fn));
}

double Agent::outstanding(std::uint64_t sed_uid) const {
  auto it = outstanding_.find(sed_uid);
  return it != outstanding_.end() ? it->second : 0.0;
}

std::uint64_t Agent::assigned_total(std::uint64_t sed_uid) const {
  auto it = assigned_total_.find(sed_uid);
  return it != assigned_total_.end() ? it->second : 0;
}

void Agent::on_message(const net::Envelope& envelope) {
  if (failed_) return;
  switch (envelope.type) {
    case kSedRegister:
      handle_sed_register(envelope);
      break;
    case kAgentRegister:
      handle_agent_register(envelope);
      break;
    case kRequestSubmit:
      handle_submit(envelope);
      break;
    case kRequestCollect:
      handle_collect(envelope);
      break;
    case kCandidates:
      handle_candidates(envelope);
      break;
    case kJobDone:
      handle_job_done(envelope);
      break;
    case kHeartbeat:
      handle_heartbeat(envelope);
      break;
    case kPeerAnnounce:
      handle_peer_announce(envelope);
      break;
    case kPeerCollect:
      handle_peer_collect(envelope);
      break;
    case kPeerCandidates:
      handle_peer_candidates(envelope);
      break;
    case dtm::kDataRegister:
      handle_data_register(envelope);
      break;
    case dtm::kDataUnregister:
      handle_data_unregister(envelope);
      break;
    case dtm::kDataLocate:
      handle_data_locate(envelope);
      break;
    case dtm::kDataStripe:
      handle_data_stripe(envelope);
      break;
    case kLoadReport:
      break;  // monitoring data; agents store nothing extra in this repo
    case kRegisterAck:
      break;
    default:
      GC_WARN << "agent " << name_ << ": unexpected message type "
              << envelope.type;
  }
}

void Agent::handle_sed_register(const net::Envelope& envelope) {
  const SedRegisterMsg msg = SedRegisterMsg::decode(envelope.payload);
  // Topology edge for the request journal; idempotent, so the re-register
  // path below is covered too.
  if (obs::journal_on()) obs::Journal::instance().note_edge(msg.name, name_);
  // A restarted SED re-registers under a fresh endpoint: update the
  // existing child (keyed by name) instead of growing a doppelganger.
  for (auto& existing : children_) {
    if (existing.is_sed && existing.name == msg.name) {
      if (existing.hb_timer != 0) {
        env()->cancel_timer(existing.hb_timer);
        existing.hb_timer = 0;
      }
      existing.endpoint = envelope.from;
      existing.sed_uid = msg.sed_uid;
      existing.alive = true;
      existing.consecutive_timeouts = 0;
      // A re-registration means the SED restarted: its in-memory data
      // store is gone, so every replica the catalog still credits it
      // with is stale.
      drop_sed_replicas(msg.sed_uid);
      for (const auto& desc : msg.services) {
        existing.services.insert(desc.path());
        services_.insert(desc.path());
      }
      env()->send(
          net::Envelope{endpoint(), envelope.from, kRegisterAck, {}, 0});
      arm_child_deadline(envelope.from);
      propagate_services();
      return;
    }
  }
  Child child;
  child.endpoint = envelope.from;
  child.is_sed = true;
  child.name = msg.name;
  child.sed_uid = msg.sed_uid;
  for (const auto& desc : msg.services) {
    child.services.insert(desc.path());
    services_.insert(desc.path());
  }
  children_.push_back(std::move(child));
  env()->send(net::Envelope{endpoint(), envelope.from, kRegisterAck, {}, 0});
  arm_child_deadline(envelope.from);
  propagate_services();
}

void Agent::handle_agent_register(const net::Envelope& envelope) {
  const AgentRegisterMsg msg = AgentRegisterMsg::decode(envelope.payload);
  if (obs::journal_on()) obs::Journal::instance().note_edge(msg.name, name_);
  // An LA re-registers whenever its service list grows; update in place.
  for (auto& child : children_) {
    if (child.endpoint == envelope.from) {
      child.services.insert(msg.services.begin(), msg.services.end());
      services_.insert(msg.services.begin(), msg.services.end());
      propagate_services();
      return;
    }
  }
  Child child;
  child.endpoint = envelope.from;
  child.is_sed = false;
  child.name = msg.name;
  child.services.insert(msg.services.begin(), msg.services.end());
  services_.insert(msg.services.begin(), msg.services.end());
  children_.push_back(std::move(child));
  env()->send(net::Envelope{endpoint(), envelope.from, kRegisterAck, {}, 0});
  arm_child_deadline(envelope.from);
  propagate_services();
}

void Agent::handle_submit(const net::Envelope& envelope) {
  GC_CHECK_MSG(kind_ == Kind::kMaster, "clients must submit to the MA");
  // Clients stamp their request id (>= 1) as the trace id on every
  // submit; a zero here means a hand-rolled envelope skipped the client
  // and the whole request chain would be untraceable.
  GC_INVARIANT(envelope.trace_id != 0,
               "client submit envelope carries no trace id");
  const RequestSubmitMsg msg = RequestSubmitMsg::decode(envelope.payload);
  // A duplicated submit must not fan out twice: the client ignores the
  // second reply, but the phantom assignment would skew outstanding_.
  if (!seen_submits_.insert({envelope.from, msg.client_request_id}).second) {
    return;
  }
  Pending pending;
  pending.from_client = true;
  pending.reply_to = envelope.from;
  pending.client_request_id = msg.client_request_id;
  pending.service = msg.desc.path();
  pending.in_bytes = msg.in_bytes;
  pending.trace_id = envelope.trace_id;
  pending.deps = msg.deps;
  // Federation entry point: this MA is the origin, with the full hop
  // budget. Both stay zero on an unfederated MA.
  pending.origin_uid = ma_uid_;
  pending.peer_budget = peers_.empty() ? 0 : tuning_.peer_ttl;

  RequestCollectMsg collect;
  collect.request_key = next_key_++;
  collect.desc = msg.desc;
  collect.in_bytes = msg.in_bytes;
  collect.timeout_s = tuning_.collect_timeout;
  collect.deps = msg.deps;
  start_collect(collect.request_key, std::move(pending), collect);
}

void Agent::handle_collect(const net::Envelope& envelope) {
  const RequestCollectMsg msg = RequestCollectMsg::decode(envelope.payload);
  auto existing = pending_.find(msg.request_key);
  if (existing != pending_.end()) {
    // Same parent re-asking with the same key = a duplicated
    // kRequestCollect on the wire; the collect is already running, drop
    // the copy. Anything else colliding on the key is a real bug.
    GC_INVARIANT(existing->second.reply_to == envelope.from &&
                     existing->second.service == msg.desc.path(),
                 "request key " + std::to_string(msg.request_key) +
                     " collision at agent " + name_);
    return;
  }
  Pending pending;
  pending.from_client = false;
  pending.reply_to = envelope.from;
  pending.service = msg.desc.path();
  pending.in_bytes = msg.in_bytes;
  pending.trace_id = envelope.trace_id;
  pending.deps = msg.deps;
  start_collect(msg.request_key, std::move(pending), msg);
}

void Agent::start_collect(std::uint64_t key, Pending pending,
                          const RequestCollectMsg& msg) {
  std::vector<net::Endpoint> targets;
  for (const auto& child : children_) {
    if (!child.alive) continue;  // heartbeat watchdog marked it dead
    if (child.services.count(pending.service) > 0) {
      targets.push_back(child.endpoint);
    }
  }
  // Federation fan-out: forward to capable peer shards when the hop budget
  // allows — on every request under federate_always, otherwise only when
  // no local child offers the service (a shard miss).
  std::vector<net::Endpoint> peer_targets;
  if (kind_ == Kind::kMaster && !peers_.empty() && pending.peer_budget > 0 &&
      (tuning_.federate_always || targets.empty())) {
    for (const auto& peer : peers_) {
      if (!peer.alive) continue;  // ejected shard
      if (peer.uid == pending.origin_uid) continue;  // never back to origin
      if (peer.endpoint == pending.reply_to) continue;  // nor to the asker
      if (peer.services.count(pending.service) == 0) continue;
      peer_targets.push_back(peer.endpoint);
    }
  }
  pending.expected = targets.size() + peer_targets.size();
  pending.asked = targets;
  if (obs::tracing()) {
    pending.span = obs::Tracer::instance().begin_span(
        env()->now(), "collect:" + pending.service, "agent:" + name_,
        pending.trace_id);
  }
  if (obs::metrics_on()) {
    obs::Metrics::instance()
        .counter("diet_agent_requests_total", {{"agent", name_}})
        .inc();
  }
  const obs::TraceId trace_id = pending.trace_id;
  auto [it, inserted] = pending_.emplace(key, std::move(pending));
  if (!inserted) {
    GC_INVARIANT(false, "duplicate in-flight request key " +
                            std::to_string(key) + " at agent " + name_);
    GC_WARN << "agent " << name_ << ": duplicate request key " << key;
    return;
  }

  if (targets.empty() && peer_targets.empty()) {
    // No capable child (or peer): answer (empty) after the processing
    // delay.
    process_for(noisy(tuning_.processing_delay),
                [this, key]() { finalize(key); });
    return;
  }

  // My wait budget; children get a reduced share so their (possibly
  // partial) answers arrive before I give up.
  const double budget =
      msg.timeout_s > 0.0 ? msg.timeout_s : tuning_.collect_timeout;
  RequestCollectMsg forwarded = msg;
  forwarded.timeout_s = 0.6 * budget;
  // Children are inside this hierarchy: strip the federation section so
  // intra-hierarchy collects keep their pre-federation bytes.
  forwarded.origin_uid = 0;
  forwarded.ttl = 0;
  // Peers get the section: who the origin is (loop detection) and how many
  // further hops they may grant.
  RequestCollectMsg peer_forwarded = msg;
  peer_forwarded.timeout_s = 0.6 * budget;
  peer_forwarded.origin_uid = pending.origin_uid;
  peer_forwarded.ttl = pending.peer_budget > 0 ? pending.peer_budget - 1 : 0;

  // Fan-out costs exclusive CPU: base processing plus marshalling one
  // collect message per child/peer.
  process_for(
      noisy(tuning_.processing_delay) +
          tuning_.per_message_cost *
              static_cast<double>(1 + targets.size() + peer_targets.size()),
      [this, key, forwarded, peer_forwarded, targets, peer_targets, budget,
       trace_id]() {
        if (failed_) return;
        if (obs::metrics_on()) {
          obs::Metrics::instance()
              .counter("diet_agent_forwards_total", {{"agent", name_}})
              .inc(targets.size());
          if (!peer_targets.empty()) {
            obs::Metrics::instance()
                .counter("diet_federation_forwards_total",
                         {{"agent", name_}})
                .inc(peer_targets.size());
          }
        }
        for (const net::Endpoint target : targets) {
          env()->send(net::Envelope{endpoint(), target, kRequestCollect,
                                    forwarded.encode(), 0, trace_id});
        }
        peer_stats_.forwards += peer_targets.size();
        for (const net::Endpoint target : peer_targets) {
          env()->send(net::Envelope{endpoint(), target, kPeerCollect,
                                    peer_forwarded.encode(), 0, trace_id});
        }
        // Schedule with whatever arrived if a child never answers.
        const net::TimerId timer = env()->post_after(budget, [this, key]() {
          if (failed_) return;
          auto it = pending_.find(key);
          if (it != pending_.end() && !it->second.finalizing) {
            GC_WARN << "agent " << name_ << ": request " << key
                    << " timed out with " << it->second.received << "/"
                    << it->second.expected << " answers";
            it->second.finalizing = true;
            finalize(key);
          }
        });
        auto it = pending_.find(key);
        if (it != pending_.end()) it->second.timeout_timer = timer;
      });
}

void Agent::handle_candidates(const net::Envelope& envelope) {
  CandidatesMsg msg = CandidatesMsg::decode(envelope.payload);
  accumulate_candidates(msg.request_key, std::move(msg.candidates),
                        envelope.from);
}

void Agent::handle_peer_collect(const net::Envelope& envelope) {
  GC_CHECK_MSG(kind_ == Kind::kMaster, "peer collects go MA to MA");
  const RequestCollectMsg msg = RequestCollectMsg::decode(envelope.payload);
  if (msg.origin_uid == ma_uid_) {
    // The forward looped back to the shard the request entered at. On
    // dense federation graphs TTL alone cannot prevent this; the origin
    // check does.
    ++peer_stats_.loop_drops;
    return;
  }
  if (!seen_peer_collects_.insert(msg.request_key).second) {
    // Cross-MA dedup: the same request reached this shard along two
    // federation paths (or was duplicated on the wire). Collect once,
    // drop the copies silently — the first collect's answer serves all.
    ++peer_stats_.dup_drops;
    return;
  }
  Pending pending;
  pending.from_peer = true;
  pending.reply_to = envelope.from;
  pending.service = msg.desc.path();
  pending.in_bytes = msg.in_bytes;
  pending.trace_id = envelope.trace_id;
  pending.deps = msg.deps;
  pending.origin_uid = msg.origin_uid;
  pending.peer_budget = msg.ttl;
  start_collect(msg.request_key, std::move(pending), msg);
}

void Agent::handle_peer_candidates(const net::Envelope& envelope) {
  PeerCandidatesMsg msg = PeerCandidatesMsg::decode(envelope.payload);
  accumulate_candidates(msg.request_key, std::move(msg.candidates),
                        envelope.from);
}

void Agent::accumulate_candidates(std::uint64_t key,
                                  std::vector<sched::Candidate> candidates,
                                  net::Endpoint from) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;  // late answer after timeout
  Pending& pending = it->second;
  // A duplicated answer would double-count towards `expected` and list
  // its candidates twice; one answer per child/peer per request.
  if (!pending.answered.insert(from).second) return;
  pending.received += 1;
  // Unmarshalling one reply (and its candidate list) is exclusive CPU.
  charge_cpu(tuning_.per_message_cost *
             static_cast<double>(1 + candidates.size()));
  for (auto& candidate : candidates) {
    pending.candidates.push_back(std::move(candidate));
  }
  if (pending.received >= pending.expected && !pending.finalizing) {
    pending.finalizing = true;
    process_for(noisy(tuning_.processing_delay) +
                    tuning_.per_message_cost *
                        static_cast<double>(pending.candidates.size()),
                [this, key]() { finalize(key); });
  }
}

void Agent::finalize(std::uint64_t key) {
  if (failed_) return;  // a dead agent answers nothing
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  Pending pending = std::move(it->second);
  pending_.erase(it);
  if (pending.timeout_timer != 0) {
    env()->cancel_timer(pending.timeout_timer);
  }
  note_timeouts(pending);

  sched::RequestContext request;
  request.request_id = key;
  request.service = pending.service;
  request.in_bytes = pending.in_bytes;

  // Candidates accumulate in reply-arrival order, which is incidental:
  // replies landing at the same instant are logically concurrent, and the
  // DES tie-break may process them either way. Rank from a canonical
  // order so the chosen SED depends only on the candidates themselves
  // (the schedule fuzzer relies on this).
  std::sort(pending.candidates.begin(), pending.candidates.end(),
            [](const sched::Candidate& a, const sched::Candidate& b) {
              return a.sed_uid < b.sed_uid;
            });

  if (kind_ == Kind::kMaster) {
    // Fill the agent-side view of each SED's outstanding assignments
    // before ranking (Section 2.1's request bookkeeping).
    for (auto& candidate : pending.candidates) {
      candidate.est.agent_assigned = outstanding(candidate.sed_uid);
    }
  }
  // Price data locality at every level: LAs rank their subtree with their
  // own catalog, the MA re-prices with the hierarchy-wide one (the fields
  // are not serialized, so each level's fill is independent).
  fill_locality(pending);
  policy_->rank(pending.candidates, request, rng_);

  if (kind_ == Kind::kMaster && pending.from_peer) {
    // Answer the asking MA with this shard's best candidates, truncated to
    // the federation's top-k bound: fan-in at the originating MA stays
    // constant per shard regardless of subtree size. The policy ranked
    // best-first above, so truncation keeps the strongest.
    if (tuning_.peer_top_k > 0 &&
        pending.candidates.size() > tuning_.peer_top_k) {
      pending.candidates.resize(tuning_.peer_top_k);
    }
    PeerCandidatesMsg up;
    up.request_key = key;
    up.ma_uid = ma_uid_;
    up.candidates = std::move(pending.candidates);
    ++peer_stats_.replies;
    peer_stats_.candidates_returned += up.candidates.size();
    ++requests_handled_;
    if (pending.span != 0) {
      obs::Tracer::instance().end_span(pending.span, env()->now());
    }
    env()->send(net::Envelope{endpoint(), pending.reply_to, kPeerCandidates,
                              up.encode(), 0, pending.trace_id});
    return;
  }

  if (kind_ == Kind::kMaster) {
    GC_CHECK_MSG(pending.from_client, "MA finalizing a non-client request");
    RequestReplyMsg reply;
    reply.client_request_id = pending.client_request_id;
    reply.found = !pending.candidates.empty();
    // Tell the client which declared deps resolve to a live replica
    // somewhere: those ship as references, the rest as full data.
    for (const auto& dep : pending.deps) {
      const auto* replicas = catalog_.locate(dep.data_id);
      if (replicas != nullptr && !replicas->empty()) {
        reply.available_ids.push_back(dep.data_id);
      }
    }
    if (reply.found) {
      reply.chosen = pending.candidates.front();
      outstanding_[reply.chosen.sed_uid] += 1.0;
      assigned_total_[reply.chosen.sed_uid] += 1;
    }
    ++requests_handled_;
    if (pending.span != 0) {
      obs::Tracer::instance().span_arg(
          pending.span, "chosen",
          reply.found ? reply.chosen.sed_name : "(none)");
      obs::Tracer::instance().end_span(pending.span, env()->now());
    }
    env()->send(net::Envelope{endpoint(), pending.reply_to, kRequestReply,
                              reply.encode(), 0, pending.trace_id});
    return;
  }

  // LA: forward the (sorted, possibly truncated) list to the parent.
  if (tuning_.forward_limit > 0 &&
      pending.candidates.size() > tuning_.forward_limit) {
    pending.candidates.resize(tuning_.forward_limit);
  }
  CandidatesMsg up;
  up.request_key = key;
  up.candidates = std::move(pending.candidates);
  obs::Tracer::instance().end_span(pending.span, env()->now());
  env()->send(net::Envelope{endpoint(), pending.reply_to, kCandidates,
                            up.encode(), 0, pending.trace_id});
}

void Agent::note_timeouts(const Pending& pending) {
  if (tuning_.max_child_timeouts <= 0) return;
  bool evicted = false;
  for (auto it = children_.begin(); it != children_.end();) {
    Child& child = *it;
    const bool was_asked =
        std::find(pending.asked.begin(), pending.asked.end(),
                  child.endpoint) != pending.asked.end();
    if (!was_asked) {
      ++it;
      continue;
    }
    if (pending.answered.count(child.endpoint) > 0) {
      child.consecutive_timeouts = 0;
      ++it;
      continue;
    }
    if (++child.consecutive_timeouts >= tuning_.max_child_timeouts) {
      GC_WARN << "agent " << name_ << ": evicting unresponsive child "
              << child.name;
      if (child.is_sed) drop_sed_replicas(child.sed_uid);
      it = children_.erase(it);
      evicted = true;
    } else {
      ++it;
    }
  }
  if (evicted) {
    // Recompute the service union and tell the parent.
    services_.clear();
    for (const auto& child : children_) {
      services_.insert(child.services.begin(), child.services.end());
    }
    propagate_services();
  }
}

void Agent::update_catalog_gauge() {
  if (!obs::metrics_on()) return;
  auto& m = obs::Metrics::instance();
  const obs::Labels labels = {{"agent", name_}};
  m.gauge("diet_dtm_catalog_entries", labels)
      .set(static_cast<double>(catalog_.entry_count()));
  m.gauge("diet_dtm_catalog_replicas", labels)
      .set(static_cast<double>(catalog_.replica_count()));
}

void Agent::drop_sed_replicas(std::uint64_t sed_uid) {
  if (sed_uid == 0) return;
  const std::vector<std::string> dropped = catalog_.drop_sed(sed_uid);
  if (dropped.empty()) return;
  update_catalog_gauge();
  if (parent_ == net::kNullEndpoint) return;
  dtm::DataUnregisterMsg msg;
  msg.sed_uid = sed_uid;
  // Empty data_id = "drop everything this SED held" — one message no
  // matter how many replicas died with the SED.
  env()->send(net::Envelope{endpoint(), parent_, dtm::kDataUnregister,
                            msg.encode(), 0});
}

void Agent::handle_data_register(const net::Envelope& envelope) {
  const dtm::DataRegisterMsg msg = dtm::DataRegisterMsg::decode(
      envelope.payload);
  catalog_.add(msg.data_id, msg.holder);
  update_catalog_gauge();
  // Write-replication: the holder's direct parent picks the extra homes.
  // Only the agent that has the holder as a direct SED child fans out, so
  // a forwarded registration never cascades into more copies.
  if (msg.replicas > 1) {
    bool direct_parent = false;
    for (const auto& child : children_) {
      if (child.is_sed && child.sed_uid == msg.holder.sed_uid) {
        direct_parent = true;
        break;
      }
    }
    if (direct_parent) {
      int wanted = msg.replicas - 1;
      // children_ keeps registration order: the target choice is part of
      // the deterministic schedule.
      for (const auto& child : children_) {
        if (wanted <= 0) break;
        if (!child.is_sed || !child.alive) continue;
        if (child.sed_uid == msg.holder.sed_uid) continue;
        if (catalog_.holds(msg.data_id, child.sed_uid)) continue;
        dtm::DataReplicateMsg rep;
        rep.data_id = msg.data_id;
        rep.holder = msg.holder;
        env()->send(net::Envelope{endpoint(), child.endpoint,
                                  dtm::kDataReplicate, rep.encode(), 0,
                                  envelope.trace_id});
        --wanted;
      }
    }
  }
  if (parent_ != net::kNullEndpoint) {
    dtm::DataRegisterMsg up = msg;
    up.replicas = 1;  // replication is the direct parent's job alone
    env()->send(net::Envelope{endpoint(), parent_, dtm::kDataRegister,
                              up.encode(), 0, envelope.trace_id});
  }
}

void Agent::handle_data_unregister(const net::Envelope& envelope) {
  const dtm::DataUnregisterMsg msg = dtm::DataUnregisterMsg::decode(
      envelope.payload);
  if (msg.data_id.empty()) {
    catalog_.drop_sed(msg.sed_uid);
  } else {
    catalog_.remove(msg.data_id, msg.sed_uid);
  }
  update_catalog_gauge();
  if (parent_ != net::kNullEndpoint) {
    env()->send(net::Envelope{endpoint(), parent_, dtm::kDataUnregister,
                              envelope.payload, 0, envelope.trace_id});
  }
}

void Agent::handle_data_locate(const net::Envelope& envelope) {
  const dtm::DataLocateMsg msg = dtm::DataLocateMsg::decode(envelope.payload);
  const auto* replicas = catalog_.locate(msg.data_id);
  dtm::DataLocationMsg answer;
  answer.data_id = msg.data_id;
  if (replicas != nullptr) {
    for (const auto& [uid, info] : *replicas) {
      if (uid == msg.requester_uid) continue;
      answer.replicas.push_back(info);
    }
  }
  if (!answer.replicas.empty()) {
    // Answer straight to the requesting SED — the reply does not retrace
    // the locate's path down the tree.
    env()->send(net::Envelope{endpoint(), msg.requester_endpoint,
                              dtm::kDataLocation, answer.encode(), 0,
                              envelope.trace_id});
    return;
  }
  if (parent_ != net::kNullEndpoint) {
    env()->send(net::Envelope{endpoint(), parent_, dtm::kDataLocate,
                              envelope.payload, 0, envelope.trace_id});
    return;
  }
  // Root with no replica. A locate that already crossed a federation edge
  // ends here: a miss stays silent (another shard — or nobody — answers;
  // the requester's fetch timeout is the miss path). Locates that
  // originated in this hierarchy cross the edge once before giving up.
  if (msg.federated) return;
  if (kind_ == Kind::kMaster && !peers_.empty()) {
    dtm::DataLocateMsg forwarded = msg;
    forwarded.federated = true;
    const net::Bytes payload = forwarded.encode();
    bool asked_any = false;
    for (const auto& peer : peers_) {
      if (!peer.alive) continue;
      env()->send(net::Envelope{endpoint(), peer.endpoint, dtm::kDataLocate,
                                payload, 0, envelope.trace_id});
      asked_any = true;
    }
    // A peer with replicas answers the requester directly; an all-miss
    // surfaces as the requester's fetch timeout. Either way this MA's
    // empty answer must NOT race ahead and kill the fetch early.
    if (asked_any) return;
  }
  // Truly final: nobody in the (unfederated or peer-less) hierarchy holds
  // the id; the empty answer makes the SED fail the fetch immediately.
  env()->send(net::Envelope{endpoint(), msg.requester_endpoint,
                            dtm::kDataLocation, answer.encode(), 0,
                            envelope.trace_id});
}

void Agent::handle_data_stripe(const net::Envelope& envelope) {
  // WAN-engine relay hop: a striped bulk transfer routed through this
  // agent (MPWide's store-and-forward path segmentation). Forward the
  // stripe unchanged — same payload, same modeled byte charge, still
  // out-of-band — to its final receiver.
  const dtm::DataStripeMsg msg = dtm::DataStripeMsg::decode(envelope.payload);
  if (msg.dest_endpoint == net::kNullEndpoint ||
      msg.dest_endpoint == endpoint()) {
    GC_WARN << "agent " << name_ << ": stripe relay with no onward hop";
    return;
  }
  net::Envelope out{endpoint(), msg.dest_endpoint, dtm::kDataStripe,
                    envelope.payload, envelope.modeled_extra_bytes,
                    envelope.trace_id};
  out.oob = true;
  env()->send(out);
}

void Agent::fill_locality(Pending& pending) {
  if (pending.deps.empty()) return;
  for (auto& candidate : pending.candidates) {
    double bytes = 0.0;
    double xfer = 0.0;
    const net::NodeId cand_node = env()->node_of(candidate.sed_endpoint);
    for (const auto& dep : pending.deps) {
      const auto* replicas = catalog_.locate(dep.data_id);
      // Deps nobody holds cost every candidate the same (a client push)
      // and deps the candidate itself holds cost nothing: neither adds
      // to the bytes-to-move term.
      if (replicas == nullptr || replicas->empty()) continue;
      if (replicas->count(candidate.sed_uid) > 0) continue;
      bytes += static_cast<double>(dep.bytes);
      double best = -1.0;
      for (const auto& [uid, info] : *replicas) {
        // Contention-aware when the flow model is on: mct-data ranks a
        // candidate behind a congested path below one with idle links.
        const double t =
            env()->estimate_transfer_s(info.node, cand_node, dep.bytes);
        if (best < 0.0 || t < best) best = t;
      }
      if (best > 0.0) xfer += best;
    }
    candidate.est.data_bytes_to_move = bytes;
    candidate.est.data_xfer_s = xfer;
  }
}

void Agent::handle_job_done(const net::Envelope& envelope) {
  const JobDoneMsg msg = JobDoneMsg::decode(envelope.payload);
  if (kind_ == Kind::kMaster) {
    auto it = outstanding_.find(msg.sed_uid);
    if (it != outstanding_.end() && it->second > 0.0) it->second -= 1.0;
    // Federation: assignments cross shards, so completions must too. The
    // MA that hears a done from its own hierarchy relays it to every peer
    // (each decrements its own outstanding_ if it ever assigned that SED);
    // a relayed done — sender is a peer — is never re-relayed.
    if (!peers_.empty() && find_peer(envelope.from) == nullptr) {
      for (const auto& peer : peers_) {
        if (!peer.alive) continue;
        env()->send(net::Envelope{endpoint(), peer.endpoint, kJobDone,
                                  envelope.payload, 0, envelope.trace_id});
      }
    }
    return;
  }
  if (parent_ != net::kNullEndpoint) {
    env()->send(net::Envelope{endpoint(), parent_, kJobDone, envelope.payload,
                              0, envelope.trace_id});
  }
}

}  // namespace gc::diet
