// Deployment: instantiates and wires an MA / LA / SED hierarchy on an Env.
//
// This is the programmatic equivalent of the GoDIET-style deployment the
// paper's experiment used (Section 5.1): one MA, one LA per cluster, SEDs
// under their LA. All components share one ServiceTable here (every SED of
// the experiment offered the same two services).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "diet/agent.hpp"
#include "diet/client.hpp"
#include "diet/sed.hpp"
#include "naming/registry.hpp"
#include "net/env.hpp"

namespace gc::diet {

struct DeploymentSpec {
  struct SedSpec {
    std::string name;
    net::NodeId node = 0;
    double host_power = 1.0;
    int machines = 1;
    /// Overrides sed_tuning.heartbeat_period for this SED when >= 0.
    /// Staggering the periods keeps sibling beacons from landing on the
    /// parent at identical timestamps — the model checker uses this to
    /// avoid state-space blow-up from equivalent beacon orderings.
    double heartbeat_period = -1.0;
  };
  struct LaSpec {
    std::string name;
    net::NodeId node = 0;
    std::vector<int> sed_indexes;  ///< indexes into `seds`
  };

  std::string ma_name = "MA1";
  net::NodeId ma_node = 0;
  std::string policy = "default";
  AgentTuning agent_tuning;
  SedTuning sed_tuning;
  std::vector<LaSpec> las;
  std::vector<SedSpec> seds;
  std::uint64_t seed = 42;

  // --- federation (all defaults preserve the single-hierarchy behavior) ---
  /// SED uids are assigned sed_uid_base + 1 .. sed_uid_base + N in spec
  /// order. Shards of a federation need disjoint ranges: uids key the MA's
  /// outstanding bookkeeping, the replica catalogs, and SED dedup journals
  /// federation-wide.
  std::uint64_t sed_uid_base = 0;
  /// Nonzero makes the MA federation-capable (Agent::set_federation);
  /// each shard of a federation needs a distinct uid.
  std::uint32_t ma_uid = 0;
  /// Request keys this MA mints start here; shards need disjoint ranges
  /// because forwarded collects keep their key across the federation.
  std::uint64_t request_key_base = 0;
};

class Deployment {
 public:
  /// Creates and attaches all actors and fires the registration messages.
  /// Under a SimEnv, run the engine briefly (e.g. run_until(now + 1.0))
  /// before submitting requests so registration settles; under a RealEnv,
  /// call env.wait_idle().
  Deployment(net::Env& env, naming::Registry& registry,
             ServiceTable& services, const DeploymentSpec& spec);

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  [[nodiscard]] Agent& ma() { return *ma_; }
  [[nodiscard]] std::size_t la_count() const { return las_.size(); }
  [[nodiscard]] Agent& la(std::size_t i) { return *las_.at(i); }
  [[nodiscard]] std::size_t sed_count() const { return seds_.size(); }
  [[nodiscard]] Sed& sed(std::size_t i) { return *seds_.at(i); }

  /// Finds a SED by uid (uids are assigned base+1..base+N in spec order).
  [[nodiscard]] Sed* sed_by_uid(std::uint64_t uid);

 private:
  std::unique_ptr<Agent> ma_;
  std::vector<std::unique_ptr<Agent>> las_;
  std::vector<std::unique_ptr<Sed>> seds_;
  std::uint64_t sed_uid_base_ = 0;
};

/// A federation of MA hierarchies on one Env: N shards, each its own
/// Deployment, with every MA pair cross-connected as peers. Shard uid
/// ranges (SED uids, MA uids, request-key bases) are assigned here so
/// callers only write per-shard specs; actor names must still be unique
/// across the whole federation (the shared Registry is flat).
class Federation {
 public:
  Federation(net::Env& env, naming::Registry& registry,
             ServiceTable& services, std::vector<DeploymentSpec> shards);
  /// Per-shard service tables (services[i] backs shards[i]); this is how a
  /// federation models sites that offer different service sets, so a
  /// request only a remote shard can serve exercises the peer forwarding
  /// path. Tables must outlive the federation.
  Federation(net::Env& env, naming::Registry& registry,
             std::vector<ServiceTable*> services,
             std::vector<DeploymentSpec> shards);

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Deployment& shard(std::size_t i) { return *shards_.at(i); }
  [[nodiscard]] Agent& ma(std::size_t i) { return shards_.at(i)->ma(); }

  /// Federation-wide flat views (shard-major order), so fault-plan
  /// schedules and reports can index SEDs/LAs exactly like a single
  /// Deployment's.
  [[nodiscard]] std::size_t sed_count() const;
  [[nodiscard]] Sed& sed(std::size_t i);
  [[nodiscard]] std::size_t la_count() const;
  [[nodiscard]] Agent& la(std::size_t i);
  [[nodiscard]] Sed* sed_by_uid(std::uint64_t uid);

 private:
  /// Shared constructor body (a delegating constructor would leave the
  /// single-table overload's `shards.size()` read unsequenced against
  /// moving `shards` into the delegate's parameter).
  void init(net::Env& env, naming::Registry& registry,
            std::vector<ServiceTable*> services,
            std::vector<DeploymentSpec> shards);

  std::vector<std::unique_ptr<Deployment>> shards_;
};

}  // namespace gc::diet
