// Deployment: instantiates and wires an MA / LA / SED hierarchy on an Env.
//
// This is the programmatic equivalent of the GoDIET-style deployment the
// paper's experiment used (Section 5.1): one MA, one LA per cluster, SEDs
// under their LA. All components share one ServiceTable here (every SED of
// the experiment offered the same two services).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "diet/agent.hpp"
#include "diet/client.hpp"
#include "diet/sed.hpp"
#include "naming/registry.hpp"
#include "net/env.hpp"

namespace gc::diet {

struct DeploymentSpec {
  struct SedSpec {
    std::string name;
    net::NodeId node = 0;
    double host_power = 1.0;
    int machines = 1;
    /// Overrides sed_tuning.heartbeat_period for this SED when >= 0.
    /// Staggering the periods keeps sibling beacons from landing on the
    /// parent at identical timestamps — the model checker uses this to
    /// avoid state-space blow-up from equivalent beacon orderings.
    double heartbeat_period = -1.0;
  };
  struct LaSpec {
    std::string name;
    net::NodeId node = 0;
    std::vector<int> sed_indexes;  ///< indexes into `seds`
  };

  std::string ma_name = "MA1";
  net::NodeId ma_node = 0;
  std::string policy = "default";
  AgentTuning agent_tuning;
  SedTuning sed_tuning;
  std::vector<LaSpec> las;
  std::vector<SedSpec> seds;
  std::uint64_t seed = 42;
};

class Deployment {
 public:
  /// Creates and attaches all actors and fires the registration messages.
  /// Under a SimEnv, run the engine briefly (e.g. run_until(now + 1.0))
  /// before submitting requests so registration settles; under a RealEnv,
  /// call env.wait_idle().
  Deployment(net::Env& env, naming::Registry& registry,
             ServiceTable& services, const DeploymentSpec& spec);

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  [[nodiscard]] Agent& ma() { return *ma_; }
  [[nodiscard]] std::size_t la_count() const { return las_.size(); }
  [[nodiscard]] Agent& la(std::size_t i) { return *las_.at(i); }
  [[nodiscard]] std::size_t sed_count() const { return seds_.size(); }
  [[nodiscard]] Sed& sed(std::size_t i) { return *seds_.at(i); }

  /// Finds a SED by uid (uids are assigned 1..N in spec order).
  [[nodiscard]] Sed* sed_by_uid(std::uint64_t uid);

 private:
  std::unique_ptr<Agent> ma_;
  std::vector<std::unique_ptr<Agent>> las_;
  std::vector<std::unique_ptr<Sed>> seds_;
};

}  // namespace gc::diet
