#include "diet/datamgr.hpp"

#include "common/log.hpp"

namespace gc::diet {

void DataManager::store(const ArgValue& value) {
  if (value.data_id().empty() || value.is_reference() || !value.has_value()) {
    return;
  }
  const std::string& id = value.data_id();
  auto it = store_.find(id);
  if (it != store_.end()) {
    bytes_ -= it->second.value.wire_bytes();
    if constexpr (check::kEnabled) {
      audit_.remove(id, it->second.value.wire_bytes(), __FILE__, __LINE__);
    }
    lru_.erase(it->second.lru_position);
    store_.erase(it);
  }
  lru_.push_front(id);
  store_.emplace(id, Entry{value, lru_.begin()});
  bytes_ += value.wire_bytes();
  if constexpr (check::kEnabled) {
    audit_.add(id, value.wire_bytes(), __FILE__, __LINE__);
    audit_.expect(store_.size(), bytes_, __FILE__, __LINE__);
    GC_INVARIANT(lru_.size() == store_.size(),
                 "LRU list and store diverged");
  }
  evict_to_fit();
}

const ArgValue* DataManager::lookup(const std::string& data_id) {
  auto it = store_.find(data_id);
  if (it == store_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.erase(it->second.lru_position);
  lru_.push_front(data_id);
  it->second.lru_position = lru_.begin();
  return &it->second.value;
}

bool DataManager::erase(const std::string& data_id) {
  auto it = store_.find(data_id);
  if (it == store_.end()) return false;
  bytes_ -= it->second.value.wire_bytes();
  if constexpr (check::kEnabled) {
    audit_.remove(data_id, it->second.value.wire_bytes(), __FILE__, __LINE__);
  }
  lru_.erase(it->second.lru_position);
  store_.erase(it);
  if constexpr (check::kEnabled) {
    audit_.expect(store_.size(), bytes_, __FILE__, __LINE__);
    GC_INVARIANT(lru_.size() == store_.size(),
                 "LRU list and store diverged");
  }
  return true;
}

void DataManager::clear() {
  store_.clear();
  lru_.clear();
  bytes_ = 0;
  if constexpr (check::kEnabled) audit_.reset();
}

void DataManager::evict_to_fit() {
  if (max_bytes_ <= 0) return;
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    GC_DEBUG << "datamgr: evicting " << victim;
    erase(victim);
    ++evictions_;
  }
}

}  // namespace gc::diet
