// DIET client.
//
// "The goal of the client is to connect to a Master Agent in order to
// dispose of a SED which will be able to solve the problem. Then the
// client sends input data to the chosen SED and, after the end of
// computation, retrieve output data from the SED." (Section 4.3.)
//
// The client records, per call, the timestamps behind Figure 5:
//   submitted -> found      : the *finding time* (scheduling round-trip)
//   found -> started        : the *latency* (data transfer + queue wait +
//                             service initiation)
//   started -> completed    : the service execution + result return.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "diet/protocol.hpp"
#include "net/env.hpp"
#include "obs/trace.hpp"

namespace gc::diet {

class Client final : public net::Actor {
 public:
  struct CallRecord {
    std::uint64_t id = 0;
    std::string service;
    SimTime submitted = -1.0;
    SimTime found = -1.0;      ///< kRequestReply received
    SimTime started = -1.0;    ///< kCallStarted received
    SimTime completed = -1.0;  ///< kCallResult received
    std::uint64_t sed_uid = 0;
    std::string sed_name;
    int solve_status = -1;
    bool ok = false;

    [[nodiscard]] double finding_time() const { return found - submitted; }
    /// The paper's latency: data transfer + queue wait + initiation.
    [[nodiscard]] double latency() const { return started - found; }
    [[nodiscard]] double total_time() const { return completed - submitted; }
  };

  using DoneFn = std::function<void(const gc::Status&, Profile&)>;

  struct Tuning {
    /// Client CPU per call submission (profile marshalling, GridRPC
    /// bookkeeping). Submissions serialize on the client thread, so a
    /// burst of 100 diet_call_async spreads out — as in the paper's
    /// client loop.
    double submit_marshalling = 1.0e-3;
    /// Total tries per call; 1 (the default) is the pre-existing
    /// single-shot behavior. Each extra attempt re-runs the whole
    /// finding + computing phase, possibly on a different SED.
    int max_attempts = 1;
    /// Give up on an attempt this long after its submit and retry (or
    /// fail); 0 waits forever. This is what turns a SED that dies with
    /// our job into a retry instead of a hung call.
    double attempt_timeout_s = 0.0;
    /// Retry i (1-based) waits backoff_base_s * backoff_mult^(i-1)
    /// before resubmitting, giving the hierarchy time to notice the
    /// failure (heartbeat eviction) and the WAN time to recover.
    double backoff_base_s = 0.0;
    double backoff_mult = 2.0;
  };

  explicit Client(std::string name) : name_(std::move(name)) {}
  Client(std::string name, const Tuning& tuning)
      : name_(std::move(name)), tuning_(tuning) {}
  /// `id_base` partitions the call-id space: this client's ids are
  /// base+1, base+2, ... Call ids double as trace ids and as the SED-side
  /// at-most-once dedup keys, so clients sharing a hierarchy MUST use
  /// disjoint bases (the load generator hands client k base k<<32).
  /// Must leave bit 63 clear — it marks retry wire ids.
  Client(std::string name, const Tuning& tuning, std::uint64_t id_base)
      : name_(std::move(name)),
        tuning_(tuning),
        id_base_(id_base),
        next_id_(id_base + 1),
        next_submission_(id_base + 1) {}

  /// Points this client at its Master Agent (diet_initialize resolves the
  /// MA name from the configuration file to this endpoint).
  void connect(net::Endpoint master_agent) { ma_ = master_agent; }

  /// GridRPC-style asynchronous call (diet_call_async). Thread-safe: may
  /// be invoked from any thread; `done` runs on the Env dispatch context
  /// with the profile containing merged OUT/INOUT values.
  /// `deadline_s` > 0 bounds the whole call: if no result arrived within
  /// that many seconds of submission, the call completes with
  /// kUnavailable (a late result from the SED is then ignored). This is
  /// how a client survives a SED dying with its job (see Sed::fail).
  std::uint64_t call_async(Profile profile, DoneFn done,
                           double deadline_s = 0.0);

  /// Synchronous diet_call. Only valid under RealEnv (a simulated client
  /// cannot block); merges results into `profile`. `deadline_s` > 0
  /// bounds the wait like call_async's deadline — without it a SED that
  /// never replies would block the caller forever.
  gc::Status call(Profile& profile, double deadline_s = 0.0);

  void on_message(const net::Envelope& envelope) override;

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Completed + in-flight call records, in submission order. Only read
  /// this when the Env is idle (or from the dispatch context).
  [[nodiscard]] const std::vector<CallRecord>& records() const {
    return records_;
  }

 private:
  struct PendingCall {
    Profile profile;
    DoneFn done;
    std::size_t record_index = 0;
    net::TimerId deadline_timer = 0;
    std::uint64_t sed_uid = 0;
    bool resent_full = false;  ///< one resend per attempt after a data miss
    obs::SpanId call_span = 0;  ///< whole call, submit -> complete
    obs::SpanId find_span = 0;  ///< scheduling round-trip, submit -> reply
    /// The current attempt's on-the-wire request id. Attempt 1 uses the
    /// call id itself; each retry draws a fresh one, so a SED that
    /// executes both the lost first attempt and the retry executes two
    /// distinct wire ids — at-most-once per id by construction — and
    /// replies to an abandoned attempt miss the wire_to_call_ map and
    /// fall on the floor.
    std::uint64_t wire_id = 0;
    int attempt = 1;
    bool reply_seen = false;  ///< guards against a duplicated kRequestReply
    net::TimerId attempt_timer = 0;
    /// Data ids the MA's reply said resolve to a live replica somewhere
    /// in the hierarchy: these ship as references even to a SED that does
    /// not hold them (it pulls peer-to-peer). Refilled on every reply.
    std::set<std::string> available;
  };

  void submit(std::uint64_t id, Profile profile, DoneFn done,
              double deadline_s);
  /// Hands queued submissions to the marshalling serializer in call-id
  /// order (= call_async program order), however the hand-off events were
  /// interleaved by the dispatcher.
  void drain_submissions();
  /// Ships the IN/INOUT data to the chosen SED. Persistent arguments the
  /// SED is known to hold travel as id-only references unless
  /// `force_full` (the missing-data retry).
  void send_call_data(std::uint64_t id, net::Endpoint sed,
                      std::uint64_t sed_uid, bool force_full);
  void handle_reply(const net::Envelope& envelope);
  void handle_started(const net::Envelope& envelope);
  void handle_result(const net::Envelope& envelope);
  void complete(std::uint64_t id, const gc::Status& status);
  /// Re-runs the whole finding + computing phase under a fresh wire id.
  void start_attempt(std::uint64_t call_id);
  /// Schedules the next attempt after backoff, or completes the call
  /// with kUnavailable when the attempt budget is spent.
  void retry_or_fail(std::uint64_t call_id, const std::string& reason);
  void arm_attempt_timer(std::uint64_t call_id);

  std::string name_;
  Tuning tuning_;
  net::Endpoint ma_ = net::kNullEndpoint;
  double submit_busy_until_ = 0.0;
  std::uint64_t id_base_ = 0;
  std::atomic<std::uint64_t> next_id_{1};
  struct QueuedSubmission {
    Profile profile;
    DoneFn done;
    double deadline_s = 0.0;
  };
  /// Submissions whose hand-off event has fired, keyed by call id and
  /// drained in id order (see drain_submissions).
  std::map<std::uint64_t, QueuedSubmission> queued_submissions_;
  std::uint64_t next_submission_ = 1;  ///< next call id to hand off
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  /// Current attempt's wire id -> call id; retries re-point it, so a
  /// message for a superseded attempt no longer resolves.
  std::unordered_map<std::uint64_t, std::uint64_t> wire_to_call_;
  /// Wire ids for retry attempts. Disjoint from next_id_ (top bit set)
  /// because drain_submissions relies on call ids being contiguous.
  std::uint64_t next_retry_wire_ = 0;
  std::unordered_map<std::uint64_t, net::Endpoint> call_sed_;
  std::vector<CallRecord> records_;
  std::unordered_map<std::uint64_t, std::size_t> record_of_;
  /// Persistent data ids each SED (by uid) is known to hold.
  std::unordered_map<std::uint64_t, std::set<std::string>> known_at_;
};

}  // namespace gc::diet
