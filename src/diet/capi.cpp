#include "diet/capi.hpp"

#include <condition_variable>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/log.hpp"
#include "diet/config.hpp"

namespace {

using gc::diet::Client;
using gc::diet::Config;
using gc::diet::Sed;
using gc::diet::SedTuning;
using gc::diet::ServiceTable;

/// Completion state of one diet_call_async request.
struct AsyncRequest {
  bool completed = false;
  int status = -1;
  diet_profile_t* profile = nullptr;  ///< caller's profile to merge into
};

struct Session {
  gc::net::RealEnv* env = nullptr;
  gc::naming::Registry* registry = nullptr;
  gc::net::NodeId client_node = 0;
  std::unique_ptr<Client> client;
  std::unique_ptr<ServiceTable> table;
  std::vector<std::unique_ptr<Sed>> seds;
  std::uint64_t next_sed_uid = 1000;

  std::mutex async_mutex;
  std::condition_variable async_cv;
  std::map<diet_reqID_t, AsyncRequest> async_requests;
  diet_reqID_t next_request_id = 1;
};

Session g_session;

gc::diet::Persistence to_persistence(diet_persistence_mode_t mode) {
  return static_cast<gc::diet::Persistence>(mode);
}
gc::diet::BaseType to_base(diet_base_type_t base) {
  return static_cast<gc::diet::BaseType>(base);
}

}  // namespace

namespace gc::diet::capi {

void bind_process(net::RealEnv& env, naming::Registry& registry,
                  net::NodeId client_node) {
  g_session.env = &env;
  g_session.registry = &registry;
  g_session.client_node = client_node;
}

void unbind_process() {
  g_session.client.reset();
  g_session.seds.clear();
  g_session.table.reset();
  g_session.env = nullptr;
  g_session.registry = nullptr;
}

}  // namespace gc::diet::capi

// --- client side -------------------------------------------------------------

int diet_initialize(const char* config_file, int /*argc*/, char** /*argv*/) {
  if (g_session.env == nullptr || g_session.registry == nullptr) {
    GC_ERROR << "diet_initialize: no process binding (call "
                "gc::diet::capi::bind_process first)";
    return 1;
  }
  auto config = Config::load(config_file);
  if (!config.is_ok()) {
    GC_ERROR << "diet_initialize: " << config.status().to_string();
    return 1;
  }
  const std::string ma_name = config.value().get_or("MAName", "MA1");
  auto ma = g_session.registry->resolve(ma_name);
  if (!ma.is_ok()) {
    GC_ERROR << "diet_initialize: cannot resolve MA '" << ma_name << "'";
    return 1;
  }
  g_session.client = std::make_unique<Client>("capi-client");
  g_session.env->attach(*g_session.client, g_session.client_node);
  g_session.client->connect(ma.value());
  g_session.env->start();
  return 0;
}

int diet_finalize() {
  if (g_session.env != nullptr) g_session.env->wait_idle();
  {
    std::lock_guard<std::mutex> lock(g_session.async_mutex);
    g_session.async_requests.clear();
  }
  g_session.client.reset();
  return 0;
}

diet_profile_t* diet_profile_alloc(const char* path, int last_in,
                                   int last_inout, int last_out) {
  return new gc::diet::Profile(path, last_in, last_inout, last_out);
}

int diet_profile_free(diet_profile_t* profile) {
  delete profile;
  return 0;
}

int diet_scalar_set(diet_arg_t* arg, const void* value,
                    diet_persistence_mode_t mode, diet_base_type_t base) {
  if (arg == nullptr || value == nullptr) return 1;
  gc::Status status;
  switch (base) {
    case DIET_CHAR:
      status = arg->set_scalar<char>(*static_cast<const char*>(value),
                                     to_base(base), to_persistence(mode));
      break;
    case DIET_SHORT:
      status = arg->set_scalar<short>(*static_cast<const short*>(value),
                                      to_base(base), to_persistence(mode));
      break;
    case DIET_INT:
      status = arg->set_scalar<std::int32_t>(
          *static_cast<const std::int32_t*>(value), to_base(base),
          to_persistence(mode));
      break;
    case DIET_LONGINT:
      status = arg->set_scalar<std::int64_t>(
          *static_cast<const std::int64_t*>(value), to_base(base),
          to_persistence(mode));
      break;
    case DIET_FLOAT:
      status = arg->set_scalar<float>(*static_cast<const float*>(value),
                                      to_base(base), to_persistence(mode));
      break;
    case DIET_DOUBLE:
      status = arg->set_scalar<double>(*static_cast<const double*>(value),
                                       to_base(base), to_persistence(mode));
      break;
    default:
      return 1;
  }
  return status.is_ok() ? 0 : 1;
}

int diet_scalar_get(diet_arg_t* arg, void* value_out,
                    diet_persistence_mode_t* mode) {
  if (arg == nullptr || value_out == nullptr || !arg->has_value()) return 1;
  // DIET semantics: the caller receives a pointer to the value zone.
  *static_cast<const void**>(value_out) = arg->data_ptr();
  if (mode != nullptr) {
    *mode = static_cast<diet_persistence_mode_t>(arg->desc.persistence);
  }
  return 0;
}

int diet_string_set(diet_arg_t* arg, const char* value,
                    diet_persistence_mode_t mode) {
  if (arg == nullptr || value == nullptr) return 1;
  return arg->set_string(value, to_persistence(mode)).is_ok() ? 0 : 1;
}

int diet_file_set(diet_arg_t* arg, diet_persistence_mode_t mode,
                  const char* path) {
  if (arg == nullptr) return 1;
  // NULL path = OUT file declared without a value (Section 4.3.2).
  if (path == nullptr) {
    arg->desc.type = gc::diet::DataType::kFile;
    arg->desc.base = gc::diet::BaseType::kChar;
    arg->desc.persistence = to_persistence(mode);
    arg->clear_value();
    return 0;
  }
  return arg->set_file(path, to_persistence(mode)).is_ok() ? 0 : 1;
}

int diet_file_get(diet_arg_t* arg, diet_persistence_mode_t* mode,
                  std::size_t* size, char** path) {
  if (arg == nullptr) return 1;
  auto file = arg->get_file();
  if (!file.is_ok()) return 1;
  if (mode != nullptr) {
    *mode = static_cast<diet_persistence_mode_t>(arg->desc.persistence);
  }
  if (size != nullptr) {
    *size = static_cast<std::size_t>(file.value().size_bytes);
  }
  if (path != nullptr) {
    // DIET allocates the zone and the user frees it.
    *path = ::strdup(file.value().path.c_str());
  }
  return 0;
}

int diet_call(diet_profile_t* profile) {
  if (g_session.client == nullptr || profile == nullptr) return 1;
  const gc::Status status = g_session.client->call(*profile);
  if (!status.is_ok()) {
    GC_WARN << "diet_call: " << status.to_string();
    return 1;
  }
  return 0;
}

int grpc_initialize(const char* config_file) {
  return diet_initialize(config_file, 0, nullptr);
}
int grpc_finalize() { return diet_finalize(); }
int grpc_call(diet_profile_t* profile) { return diet_call(profile); }

// --- asynchronous GridRPC family ----------------------------------------------

int diet_call_async(diet_profile_t* profile, diet_reqID_t* request_id) {
  if (g_session.client == nullptr || profile == nullptr ||
      request_id == nullptr) {
    return 1;
  }
  diet_reqID_t id;
  {
    std::lock_guard<std::mutex> lock(g_session.async_mutex);
    id = g_session.next_request_id++;
    g_session.async_requests[id] = AsyncRequest{false, -1, profile};
  }
  *request_id = id;
  g_session.client->call_async(
      *profile, [id](const gc::Status& status, gc::diet::Profile& result) {
        std::lock_guard<std::mutex> lock(g_session.async_mutex);
        auto it = g_session.async_requests.find(id);
        if (it == g_session.async_requests.end()) return;  // cancelled
        if (it->second.profile != nullptr) {
          *it->second.profile = result;  // merge OUT/INOUT back
        }
        it->second.completed = true;
        it->second.status = status.is_ok() ? 0 : 1;
        g_session.async_cv.notify_all();
      });
  return 0;
}

int diet_wait(diet_reqID_t request_id) {
  std::unique_lock<std::mutex> lock(g_session.async_mutex);
  auto it = g_session.async_requests.find(request_id);
  if (it == g_session.async_requests.end()) return -1;
  // DIET C API contract: this blocks a RealEnv client thread, never the
  // dispatch context.
  // gclint: allow(mc-blocking) RealEnv client-thread wait
  g_session.async_cv.wait(lock, [request_id] {
    auto i = g_session.async_requests.find(request_id);
    return i == g_session.async_requests.end() || i->second.completed;
  });
  it = g_session.async_requests.find(request_id);
  return it != g_session.async_requests.end() ? it->second.status : -1;
}

int diet_wait_all() {
  std::unique_lock<std::mutex> lock(g_session.async_mutex);
  // gclint: allow(mc-blocking) RealEnv client-thread wait
  g_session.async_cv.wait(lock, [] {
    for (const auto& [id, request] : g_session.async_requests) {
      (void)id;
      if (!request.completed) return false;
    }
    return true;
  });
  int worst = 0;
  for (const auto& [id, request] : g_session.async_requests) {
    (void)id;
    worst = std::max(worst, request.status);
  }
  return worst;
}

int diet_wait_any(diet_reqID_t* request_id) {
  if (request_id == nullptr) return -1;
  std::unique_lock<std::mutex> lock(g_session.async_mutex);
  diet_reqID_t found = 0;
  // gclint: allow(mc-blocking) RealEnv client-thread wait
  g_session.async_cv.wait(lock, [&found] {
    for (const auto& [id, request] : g_session.async_requests) {
      if (request.completed) {
        found = id;
        return true;
      }
    }
    return g_session.async_requests.empty();
  });
  if (found == 0) return -1;
  *request_id = found;
  return g_session.async_requests[found].status;
}

int diet_probe(diet_reqID_t request_id) {
  std::lock_guard<std::mutex> lock(g_session.async_mutex);
  auto it = g_session.async_requests.find(request_id);
  if (it == g_session.async_requests.end()) return -1;
  return it->second.completed ? 0 : 1;
}

int diet_cancel(diet_reqID_t request_id) {
  std::lock_guard<std::mutex> lock(g_session.async_mutex);
  return g_session.async_requests.erase(request_id) > 0 ? 0 : -1;
}

int grpc_call_async(diet_profile_t* profile, diet_reqID_t* request_id) {
  return diet_call_async(profile, request_id);
}
int grpc_wait(diet_reqID_t request_id) { return diet_wait(request_id); }
int grpc_wait_all() { return diet_wait_all(); }
int grpc_wait_any(diet_reqID_t* request_id) {
  return diet_wait_any(request_id);
}
int grpc_probe(diet_reqID_t request_id) { return diet_probe(request_id); }

// --- server side --------------------------------------------------------------

diet_profile_desc_t* diet_profile_desc_alloc(const char* path, int last_in,
                                             int last_inout, int last_out) {
  return new gc::diet::ProfileDesc(path, last_in, last_inout, last_out);
}

int diet_profile_desc_free(diet_profile_desc_t* desc) {
  delete desc;
  return 0;
}

int diet_generic_desc_set(diet_arg_desc_t* arg, diet_data_type_t type,
                          diet_base_type_t base) {
  if (arg == nullptr) return 1;
  arg->type = static_cast<gc::diet::DataType>(type);
  arg->base = to_base(base);
  return 0;
}

int diet_service_table_init(int max_size) {
  g_session.table =
      std::make_unique<ServiceTable>(static_cast<std::size_t>(max_size));
  return 0;
}

int diet_service_table_add(const diet_profile_desc_t* profile,
                           const void* /*convertor*/, diet_solve_t solve) {
  if (g_session.table == nullptr || profile == nullptr || solve == nullptr) {
    return 1;
  }
  const gc::Status status = g_session.table->add_sync(
      *profile,
      [solve](gc::diet::Profile& p) { return solve(&p); });
  return status.is_ok() ? 0 : 1;
}

void diet_print_service_table() {
  if (g_session.table != nullptr) {
    GC_INFO << "\n" << g_session.table->to_string();
  }
}

int diet_SeD(const char* config_file, int /*argc*/, char** /*argv*/) {
  if (g_session.env == nullptr || g_session.registry == nullptr ||
      g_session.table == nullptr) {
    GC_ERROR << "diet_SeD: missing binding or service table";
    return 1;
  }
  auto config = Config::load(config_file);
  if (!config.is_ok()) {
    GC_ERROR << "diet_SeD: " << config.status().to_string();
    return 1;
  }
  const std::string parent_name =
      config.value().get_or("parentName", "MA1");
  auto parent = g_session.registry->resolve(parent_name);
  if (!parent.is_ok()) {
    GC_ERROR << "diet_SeD: cannot resolve parent '" << parent_name << "'";
    return 1;
  }
  SedTuning tuning;
  tuning.work_dir = config.value().get_or("workDir", "/tmp");
  const auto node = static_cast<gc::net::NodeId>(
      config.value().get_int("nodeId").value_or(0));
  const double power = config.value().get_double("hostPower").value_or(1.0);
  const auto machines =
      static_cast<int>(config.value().get_int("machines").value_or(1));
  const std::string name =
      config.value().get_or("name", "SeD-" +
                                        std::to_string(g_session.next_sed_uid));
  const auto uid = g_session.next_sed_uid++;
  auto sed = std::make_unique<Sed>(uid, name, *g_session.table, power,
                                   machines, tuning, /*seed=*/uid + 1);
  g_session.env->attach(*sed, node);
  g_session.env->start();
  sed->register_at(parent.value());
  g_session.seds.push_back(std::move(sed));
  // The real diet_SeD blocks forever serving requests; in-process the Env
  // dispatcher thread serves them, so we return and let the caller keep
  // the process alive.
  return 0;
}

int diet_file_desc_set(diet_arg_t* arg, char* path) {
  if (arg == nullptr || path == nullptr) return 1;
  return arg->set_file(path, arg->desc.persistence).is_ok() ? 0 : 1;
}

int diet_free_data(diet_arg_t* arg) {
  if (arg == nullptr) return 1;
  arg->clear_value();
  return 0;
}
