#include "diet/client.hpp"

#include <cmath>
#include <future>
#include <utility>

#include "check/mutation.hpp"
#include "common/log.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace gc::diet {

namespace {

/// Assigns content-derived ids to persistent arguments that lack one and
/// lists the unique (id, bytes) pairs as the request's data deps — the
/// volume agents price against their replica catalogs. Volatile-only
/// profiles return an empty list, keeping their wire encoding unchanged.
std::vector<DataDep> declare_deps(Profile& profile) {
  std::vector<DataDep> deps;
  std::set<std::string> seen;
  for (int i = 0; i <= profile.last_inout(); ++i) {
    ArgValue& arg = profile.arg(i);
    if (!arg.has_value() ||
        arg.desc.persistence == Persistence::kVolatile) {
      continue;
    }
    if (arg.data_id().empty() && !arg.is_reference()) {
      arg.set_data_id(arg.content_id());
    }
    if (arg.data_id().empty()) continue;
    if (!seen.insert(arg.data_id()).second) continue;
    deps.push_back(DataDep{arg.data_id(), arg.wire_bytes()});
  }
  return deps;
}

}  // namespace

std::uint64_t Client::call_async(Profile profile, DoneFn done,
                                 double deadline_s) {
  GC_CHECK_MSG(ma_ != net::kNullEndpoint, "client not connected to an MA");
  const std::uint64_t id = next_id_.fetch_add(1);
  // All state mutation happens on the dispatch context so the client needs
  // no locking even when call_async is invoked from an application thread.
  // Submissions serialize behind the client's marshalling work, in call-id
  // order: a burst of hand-off events lands at one timestamp, and the
  // dispatcher may run logically-concurrent events in any order, so the
  // queue below (not event order) decides who marshals first.
  env()->post_after_as(endpoint(), 0.0,
                       [this, id, profile = std::move(profile),
                          done = std::move(done), deadline_s]() mutable {
    queued_submissions_.emplace(
        id, QueuedSubmission{std::move(profile), std::move(done), deadline_s});
    drain_submissions();
  });
  return id;
}

void Client::drain_submissions() {
  while (true) {
    auto it = queued_submissions_.find(next_submission_);
    if (it == queued_submissions_.end()) return;
    QueuedSubmission q = std::move(it->second);
    queued_submissions_.erase(it);
    const std::uint64_t id = next_submission_++;
    const double now = env()->now();
    submit_busy_until_ =
        std::max(submit_busy_until_, now) + tuning_.submit_marshalling;
    env()->post_after(submit_busy_until_ - now,
                      [this, id, profile = std::move(q.profile),
                       done = std::move(q.done),
                       deadline_s = q.deadline_s]() mutable {
                        submit(id, std::move(profile), std::move(done),
                               deadline_s);
                      });
  }
}

gc::Status Client::call(Profile& profile, double deadline_s) {
  if (env()->is_simulated()) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "blocking diet_call is not available under the DES; "
                      "use call_async");
  }
  std::promise<gc::Status> promise;
  auto future = promise.get_future();
  call_async(profile,
             [&promise, &profile](const gc::Status& status, Profile& result) {
               profile = result;  // merge OUT/INOUT values back
               promise.set_value(status);
             },
             deadline_s);
  // The synchronous call() API is RealEnv-only (guarded above); simulated
  // scenarios go through call_async.
  // gclint: allow(mc-blocking) RealEnv-only synchronous path
  return future.get();
}

void Client::submit(std::uint64_t id, Profile profile, DoneFn done,
                    double deadline_s) {
  CallRecord record;
  record.id = id;
  record.service = profile.path();
  record.submitted = env()->now();
  record_of_[id] = records_.size();
  records_.push_back(record);

  RequestSubmitMsg msg;
  msg.client_request_id = id;
  msg.desc = profile.desc();
  msg.in_bytes = profile.in_bytes();
  msg.deps = declare_deps(profile);

  net::TimerId deadline_timer = 0;
  if (deadline_s > 0.0) {
    deadline_timer = env()->post_after(deadline_s, [this, id]() {
      if (pending_.count(id) == 0) return;  // completed in time
      GC_WARN << "client " << name_ << ": call " << id
              << " exceeded its deadline";
      complete(id, make_error(ErrorCode::kUnavailable,
                              "call deadline exceeded"));
    });
  }
  PendingCall call;
  call.profile = std::move(profile);
  call.done = std::move(done);
  call.record_index = records_.size() - 1;
  call.deadline_timer = deadline_timer;
  if (obs::tracing()) {
    // The client request id doubles as the trace id: unique per call and
    // deterministic under the DES. Every hop of the request chain below
    // (submit -> collect -> reply -> data -> solve -> result) stamps it on
    // its envelopes.
    auto& tracer = obs::Tracer::instance();
    const std::string track = "client:" + name_;
    call.call_span =
        tracer.begin_span(env()->now(), "call:" + record.service, track, id);
    call.find_span = tracer.begin_span(env()->now(), "finding", track, id,
                                       call.call_span);
  }
  if (obs::metrics_on()) {
    obs::Metrics::instance()
        .counter("diet_client_calls_total", {{"client", name_}})
        .inc();
  }
  call.wire_id = id;  // attempt 1 travels under the call id itself
  wire_to_call_[id] = id;
  pending_.emplace(id, std::move(call));
  env()->send(
      net::Envelope{endpoint(), ma_, kRequestSubmit, msg.encode(), 0, id});
  arm_attempt_timer(id);
}

void Client::arm_attempt_timer(std::uint64_t call_id) {
  if (tuning_.attempt_timeout_s <= 0.0) return;
  auto it = pending_.find(call_id);
  if (it == pending_.end()) return;
  const std::uint64_t wire_id = it->second.wire_id;
  it->second.attempt_timer =
      env()->post_after(tuning_.attempt_timeout_s, [this, call_id, wire_id]() {
        auto it = pending_.find(call_id);
        // Only the attempt that armed this timer may act on it.
        if (it == pending_.end() || it->second.wire_id != wire_id) return;
        it->second.attempt_timer = 0;
        retry_or_fail(call_id, "no result within the attempt timeout");
      });
}

void Client::retry_or_fail(std::uint64_t call_id, const std::string& reason) {
  auto it = pending_.find(call_id);
  if (it == pending_.end()) return;
  PendingCall& call = it->second;
  if (call.attempt_timer != 0) {
    env()->cancel_timer(call.attempt_timer);
    call.attempt_timer = 0;
  }
  if (call.attempt >= tuning_.max_attempts) {
    complete(call_id,
             make_error(ErrorCode::kUnavailable,
                        "call failed after " + std::to_string(call.attempt) +
                            " attempts: " + reason));
    return;
  }
  const double backoff =
      tuning_.backoff_base_s *
      std::pow(tuning_.backoff_mult, static_cast<double>(call.attempt - 1));
  ++call.attempt;
  GC_WARN << "client " << name_ << ": call " << call_id << " attempt "
          << call.attempt - 1 << " failed (" << reason << "); retrying in "
          << backoff << "s";
  if (obs::metrics_on()) {
    obs::Metrics::instance()
        .counter("diet_client_retries_total", {{"client", name_}})
        .inc();
  }
  if (obs::tracing()) {
    obs::Tracer::instance().instant(env()->now(),
                                    "retry:" + std::to_string(call_id),
                                    "client:" + name_, call_id);
  }
  const int attempt = call.attempt;
  env()->post_after(backoff, [this, call_id, attempt]() {
    auto it = pending_.find(call_id);
    if (it == pending_.end() || it->second.attempt != attempt) return;
    start_attempt(call_id);
  });
}

void Client::start_attempt(std::uint64_t call_id) {
  auto it = pending_.find(call_id);
  if (it == pending_.end()) return;
  PendingCall& call = it->second;
  wire_to_call_.erase(call.wire_id);
  // Fresh wire id: whatever the previous attempt still has in flight
  // (a late reply, a duplicate result) can no longer resolve to us.
  // Mutation seam kStaleReplyReuseWire re-introduces the fixed bug of
  // retrying under the old id — the SED's dedup journal then swallows a
  // retry that lands on the SED that already ran the lost attempt.
  if (!check::mutation_enabled(check::Mutation::kStaleReplyReuseWire)) {
    // The id base keeps retry wires disjoint across clients too — the
    // SED's at-most-once journal is keyed by wire id alone.
    call.wire_id = 0x8000000000000000ULL | id_base_ | ++next_retry_wire_;
  }
  wire_to_call_[call.wire_id] = call_id;
  call.reply_seen = false;
  call.resent_full = false;
  call_sed_.erase(call_id);

  RequestSubmitMsg msg;
  msg.client_request_id = call.wire_id;
  msg.desc = call.profile.desc();
  msg.in_bytes = call.profile.in_bytes();
  msg.deps = declare_deps(call.profile);
  env()->send(net::Envelope{endpoint(), ma_, kRequestSubmit, msg.encode(), 0,
                            call_id});
  arm_attempt_timer(call_id);
}

void Client::on_message(const net::Envelope& envelope) {
  switch (envelope.type) {
    case kRequestReply:
      handle_reply(envelope);
      break;
    case kCallStarted:
      handle_started(envelope);
      break;
    case kCallResult:
      handle_result(envelope);
      break;
    default:
      GC_WARN << "client " << name_ << ": unexpected message type "
              << envelope.type;
  }
}

void Client::handle_reply(const net::Envelope& envelope) {
  const RequestReplyMsg msg = RequestReplyMsg::decode(envelope.payload);
  auto wire_it = wire_to_call_.find(msg.client_request_id);
  if (wire_it == wire_to_call_.end()) return;  // superseded attempt
  const std::uint64_t call_id = wire_it->second;
  auto it = pending_.find(call_id);
  if (it == pending_.end()) return;
  if (it->second.reply_seen) return;  // duplicated reply
  it->second.reply_seen = true;
  CallRecord& record = records_[it->second.record_index];
  record.found = env()->now();
  obs::Tracer::instance().end_span(it->second.find_span, env()->now());
  it->second.find_span = 0;
  if (obs::metrics_on()) {
    obs::Metrics::instance()
        .histogram("diet_finding_time_seconds", obs::latency_buckets_s())
        .observe(record.finding_time());
  }

  if (!msg.found) {
    // More attempts in the budget: back off and re-ask (the hierarchy may
    // be mid-eviction, or a partition may heal). Otherwise fail exactly
    // like the single-shot client always has.
    if (it->second.attempt < tuning_.max_attempts) {
      retry_or_fail(call_id, "no server can solve " + record.service);
      return;
    }
    complete(call_id, make_error(ErrorCode::kUnavailable,
                                 "no server can solve " + record.service));
    return;
  }
  record.sed_uid = msg.chosen.sed_uid;
  record.sed_name = msg.chosen.sed_name;
  it->second.sed_uid = msg.chosen.sed_uid;
  it->second.available.clear();
  it->second.available.insert(msg.available_ids.begin(),
                              msg.available_ids.end());
  call_sed_[call_id] = msg.chosen.sed_endpoint;

  send_call_data(call_id, msg.chosen.sed_endpoint, msg.chosen.sed_uid,
                 /*force_full=*/false);
}

void Client::send_call_data(std::uint64_t id, net::Endpoint sed,
                            std::uint64_t sed_uid, bool force_full) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Profile& profile = it->second.profile;

  // Assign content-derived data ids to persistent arguments (DIET's DTM
  // naming) so the SED can store and later resolve them.
  for (int i = 0; i <= profile.last_inout(); ++i) {
    ArgValue& arg = profile.arg(i);
    if (arg.has_value() && !arg.is_reference() &&
        arg.desc.persistence != Persistence::kVolatile &&
        arg.data_id().empty()) {
      arg.set_data_id(arg.content_id());
    }
  }

  // Ship the IN/INOUT data to the chosen SED (the "computing phase" hand-
  // off of Section 2.2); arguments this SED is known to hold — or that
  // the MA's catalog resolved to a replica the SED can pull from a peer —
  // travel as references. Location is registered at *send* time: per-
  // destination delivery is FIFO, so a later reference can never overtake
  // the data it refers to (and the missing-data retry is the safety net
  // regardless).
  Profile wire = profile;
  auto& known = known_at_[sed_uid];
  const std::set<std::string>& available = it->second.available;
  std::int64_t bytes_saved = 0;
  for (int i = 0; i <= wire.last_inout(); ++i) {
    ArgValue& arg = wire.arg(i);
    if (!arg.has_value() || arg.data_id().empty() ||
        arg.desc.persistence == Persistence::kVolatile) {
      continue;
    }
    if (!force_full && (known.count(arg.data_id()) > 0 ||
                        available.count(arg.data_id()) > 0)) {
      const std::int64_t full = arg.wire_bytes();
      arg.make_reference();
      bytes_saved += std::max<std::int64_t>(0, full - arg.wire_bytes());
    } else {
      known.insert(arg.data_id());
    }
  }
  if (bytes_saved > 0 && obs::metrics_on()) {
    // Per-link: the bytes a reference kept off the client -> SED path.
    const std::string link = "n" + std::to_string(node()) + "->n" +
                             std::to_string(env()->node_of(sed));
    obs::Metrics::instance()
        .counter("diet_dtm_bytes_saved_total",
                 {{"client", name_}, {"link", link}})
        .inc(static_cast<std::uint64_t>(bytes_saved));
  }

  CallDataMsg data;
  data.call_id = it->second.wire_id;  // == id on attempt 1
  data.path = wire.path();
  data.last_in = wire.last_in();
  data.last_inout = wire.last_inout();
  data.last_out = wire.last_out();
  net::Writer w;
  wire.serialize_inputs(w);
  data.inputs = w.take();
  env()->send(net::Envelope{endpoint(), sed, kCallData, data.encode(),
                            wire.in_file_bytes(), id});
}

void Client::handle_started(const net::Envelope& envelope) {
  const CallStartedMsg msg = CallStartedMsg::decode(envelope.payload);
  auto wire_it = wire_to_call_.find(msg.call_id);
  if (wire_it == wire_to_call_.end()) return;  // superseded attempt
  auto it = record_of_.find(wire_it->second);
  if (it == record_of_.end()) return;
  records_[it->second].started = env()->now();
}

void Client::handle_result(const net::Envelope& envelope) {
  const CallResultMsg msg = CallResultMsg::decode(envelope.payload);
  auto wire_it = wire_to_call_.find(msg.call_id);
  if (wire_it == wire_to_call_.end()) return;  // superseded attempt
  const std::uint64_t call_id = wire_it->second;
  auto it = pending_.find(call_id);
  if (it == pending_.end()) return;

  // Persistent-data miss: the SED no longer holds a referenced value
  // (evicted, crashed-and-restarted, or our cache was stale). Resend the
  // full data once per attempt.
  if (msg.solve_status == kMissingDataStatus && !it->second.resent_full) {
    GC_WARN << "client " << name_ << ": call " << call_id
            << " hit a persistent-data miss; resending full data";
    it->second.resent_full = true;
    known_at_[it->second.sed_uid].clear();
    auto sed_it = call_sed_.find(call_id);
    if (sed_it != call_sed_.end()) {
      send_call_data(call_id, sed_it->second, it->second.sed_uid,
                     /*force_full=*/true);
      return;
    }
  }

  CallRecord& record = records_[it->second.record_index];
  record.completed = env()->now();
  record.solve_status = msg.solve_status;

  net::Reader r(msg.outputs);
  it->second.profile.merge_outputs(r);

  // PERSISTENT OUT data came home as a reference: the value stayed on the
  // SED (and in the hierarchy catalog). Remember who holds it so a later
  // call can ship the id instead of the bytes.
  Profile& out_profile = it->second.profile;
  for (int i = out_profile.last_inout() + 1; i < out_profile.arg_count();
       ++i) {
    const ArgValue& arg = out_profile.arg(i);
    if (arg.is_reference() && !arg.data_id().empty()) {
      known_at_[it->second.sed_uid].insert(arg.data_id());
    }
  }

  if (msg.solve_status != 0) {
    complete(call_id, make_error(ErrorCode::kInternal,
                                 "solve function returned " +
                                     std::to_string(msg.solve_status)));
    return;
  }
  record.ok = true;
  complete(call_id, Status::ok());
}

void Client::complete(std::uint64_t id, const gc::Status& status) {
  auto it = pending_.find(id);
  GC_CHECK(it != pending_.end());
  PendingCall call = std::move(it->second);
  pending_.erase(it);
  call_sed_.erase(id);
  wire_to_call_.erase(call.wire_id);
  if (call.deadline_timer != 0) env()->cancel_timer(call.deadline_timer);
  if (call.attempt_timer != 0) env()->cancel_timer(call.attempt_timer);
  auto& tracer = obs::Tracer::instance();
  tracer.end_span(call.find_span, env()->now());  // no-reply failure paths
  if (call.call_span != 0) {
    tracer.span_arg(call.call_span, "status",
                    status.is_ok() ? "ok" : status.to_string());
    tracer.end_span(call.call_span, env()->now());
  }
  if (obs::metrics_on()) {
    const CallRecord& record = records_[call.record_index];
    if (record.completed >= 0.0 && record.submitted >= 0.0) {
      obs::Metrics::instance()
          .histogram("diet_call_total_seconds", obs::duration_buckets_s())
          .observe(record.total_time());
    }
  }
  if (obs::journal_on()) {
    const CallRecord& record = records_[call.record_index];
    obs::RequestRecord entry;
    entry.trace_id = id;
    entry.service = record.service;
    entry.client = name_;
    entry.sed = record.sed_name;  // path above the SED resolves at export
    entry.attempts = call.attempt;
    entry.status = status.is_ok() ? "ok" : status.to_string();
    entry.submitted = record.submitted;
    entry.found = record.found;
    // completed is only stamped on a kCallResult; failures (deadline,
    // no-SED) close the record at the moment the call was abandoned.
    entry.completed =
        record.completed >= 0.0 ? record.completed : env()->now();
    obs::Journal::instance().complete(std::move(entry));
  }
  if (call.done) call.done(status, call.profile);
}

}  // namespace gc::diet
