// Server Daemon (SED).
//
// "A SED encapsulates a computational server. [...] The information stored
// by a SED is a list of the data available on its server, all information
// concerning its load [...] and the list of problems that it can solve."
// (Section 2.1.)
//
// Behaviourally faithful to the deployment of Section 5: one SED fronts a
// set of cluster machines, answers estimation requests from its Local
// Agent, queues incoming calls FIFO, and runs at most one simulation at a
// time ("each server cannot compute more than one simulation at the same
// time"). Job timestamps are logged for the Gantt chart of Figure 4.
//
// Data management: persistent arguments live in a dtm::DataManager and
// are registered in the hierarchy's replica catalog. A call referencing an
// id this SED does not hold no longer fails straight back to the client —
// the job blocks while the SED locates a surviving replica through its
// parent and pulls it peer-to-peer from the nearest holder; only when the
// hierarchy knows no replica (or the fetch times out) does the SED answer
// kMissingDataStatus and let the client resend the full data.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "check/invariant.hpp"
#include "common/rng.hpp"
#include "diet/protocol.hpp"
#include "diet/service.hpp"
#include "dtm/datamgr.hpp"
#include "dtm/messages.hpp"
#include "dtm/wan.hpp"
#include "net/env.hpp"
#include "obs/trace.hpp"

namespace gc::diet {

struct SedTuning {
  /// Time to fill the estimation vector on a collect request (probing
  /// load averages, free memory, queue state). Not exclusive: the SED
  /// answers estimations from a dedicated dispatch thread, so concurrent
  /// requests overlap (this is why the paper's finding time stays constant
  /// under 100 simultaneous requests).
  double estimation_delay = 7.5e-3;
  /// Service initiation time: forking the solver, setting up the MPI
  /// environment (the paper measured 20.8 ms on the first 12 executions).
  double init_delay = 20.8e-3;
  /// Log-normal coefficient of variation applied to the two delays above.
  double delay_noise_cv = 0.06;
  /// Concurrent jobs this SED may run (the paper's deployment: 1).
  int concurrency = 1;
  /// Period of unsolicited load reports to the parent LA ("answer to
  /// monitoring queries from its responsible Local Agent", Section 2.2).
  /// 0 disables them.
  double load_report_period = 0.0;
  /// Byte budget of the persistent data store (DIET's DTM); 0 = unbounded.
  std::int64_t data_store_max_bytes = 0;
  /// Desired total replica count for data stored here: >1 asks the parent
  /// LA to replicate fresh values onto sibling SEDs (write-replication).
  int replication_factor = 1;
  /// How long a blocked call waits for a peer-to-peer fetch before giving
  /// up and answering kMissingDataStatus (client full-resend fallback).
  double data_fetch_timeout_s = 10.0;
  /// Period of liveness heartbeats to the parent agent; 0 disables them
  /// (the default, so fault-free runs send no extra messages).
  double heartbeat_period = 0.0;
  /// MPWide-style WAN transfer engine for bulk dtm pushes (striping,
  /// relay, compression). Defaults are the classic single-stream push.
  dtm::WanTuning wan;
  /// Scratch directory for real service executions.
  std::string work_dir = "/tmp";
};

class Sed final : public net::Actor {
 public:
  struct JobRecord {
    std::uint64_t call_id;
    std::string service;
    SimTime arrived;
    SimTime started;   ///< solve began (after init delay)
    SimTime finished;  ///< result shipped
    int solve_status;
  };

  Sed(std::uint64_t uid, std::string name, ServiceTable& services,
      double host_power, int machines, SedTuning tuning, std::uint64_t seed);

  /// Announces this SED and its service table to a parent agent
  /// (diet_SeD's registration step) and starts periodic load reports when
  /// configured.
  void register_at(net::Endpoint parent);

  /// Marks this SED dead: it stops answering estimation requests, drops
  /// queued and running jobs, and sends nothing further. Used by the
  /// fault-injection benches; combined with agent collect timeouts and
  /// client call deadlines this exercises the middleware's failure paths.
  void fail();
  [[nodiscard]] bool failed() const { return failed_; }

  /// Brings a failed SED back: re-attaches to the Env under a fresh
  /// endpoint, wipes the run-time state a crash would lose (queue, data
  /// store) and re-registers at the parent. The call-id dedup journal
  /// survives (modeled as persisted in work_dir) — that is what keeps
  /// retried calls at-most-once-executed across a crash-restart.
  void restart();

  /// Stops the periodic loops (heartbeats, load reports) without failing
  /// the SED. RealEnv tests call this before Env::stop(), which waits for
  /// an empty queue and would otherwise never see one.
  void shutdown();

  void on_message(const net::Envelope& envelope) override;

  [[nodiscard]] std::uint64_t uid() const { return uid_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double host_power() const { return host_power_; }
  [[nodiscard]] int machines() const { return machines_; }
  [[nodiscard]] std::size_t queue_length() const {
    return queue_.size() + static_cast<std::size_t>(running_);
  }
  [[nodiscard]] std::uint64_t jobs_completed() const { return completed_; }
  [[nodiscard]] double busy_seconds() const { return busy_seconds_; }
  [[nodiscard]] const std::vector<JobRecord>& job_log() const {
    return job_log_;
  }
  [[nodiscard]] const ServiceTable& services() const { return services_; }
  [[nodiscard]] const dtm::DataManager& data_manager() const {
    return data_manager_;
  }
  /// Calls currently blocked on peer-to-peer data fetches.
  [[nodiscard]] std::size_t blocked_calls() const { return blocked_.size(); }

  struct PendingJob {
    std::uint64_t call_id = 0;
    net::Endpoint client = net::kNullEndpoint;
    Profile profile;
    SimTime arrived = 0.0;
    double comp_estimate_s = 0.0;  ///< plugin estimate at enqueue time (or 0)
    obs::TraceId trace_id = 0;     ///< from the kCallData envelope
    obs::SpanId queue_span = 0;    ///< arrival -> solve start
    obs::SpanId exec_span = 0;     ///< solve start -> result shipped
    std::uint64_t epoch = 0;       ///< lifecycle epoch at enqueue time
  };

  /// Internal: invoked by the running job's ServiceContext on finish().
  void complete_job(PendingJob& job, SimTime started, int solve_status);

 private:
  /// A call whose referenced data is being fetched from a peer; admitted
  /// to the queue once every missing id has arrived.
  struct BlockedCall {
    PendingJob job;
    std::set<std::string> missing;
  };
  /// One in-flight fetch of one data id, shared by every call waiting on
  /// it (waiters in arrival order — deterministic under the DES).
  struct FetchState {
    std::vector<std::uint64_t> waiters;
    net::TimerId timer = 0;
    bool pull_sent = false;
  };

  /// Reassembly of one in-flight striped transfer, keyed by transfer id.
  struct StripeAssembly {
    std::uint32_t received = 0;
    std::uint32_t count = 0;
    net::Bytes value;  ///< from stripe 0
    std::int64_t total_bytes = 0;
  };

  void handle_collect(const net::Envelope& envelope);
  void handle_call(const net::Envelope& envelope);
  void handle_data_location(const net::Envelope& envelope);
  void handle_data_pull(const net::Envelope& envelope);
  void handle_data_push(const net::Envelope& envelope);
  void handle_data_stripe(const net::Envelope& envelope);
  void handle_data_replicate(const net::Envelope& envelope);
  /// Completion of one data fetch however it arrived (single push or
  /// reassembled stripes): store the value, register the replica, and
  /// unblock every call waiting on `data_id`.
  void finish_fetch(const std::string& data_id, bool found,
                    const net::Bytes& value, std::int64_t charged_bytes,
                    obs::TraceId trace);
  /// Ships `data_id` to `requester`: one classic push, or — when the WAN
  /// engine says so — striped parallel out-of-band streams, optionally
  /// relayed through the requester's parent agent.
  void push_data(const dtm::DataPullMsg& msg, net::Endpoint requester,
                 obs::TraceId trace);
  /// Runs the admission tail (estimator, spans, queue) for a job whose
  /// data is fully materialized.
  void admit_job(PendingJob job, const ServiceEntry* entry);
  /// Stores a persistent value and, on fresh insert, registers it in the
  /// hierarchy catalog asking for `replicas` total copies.
  void store_value(const ArgValue& arg, int replicas, obs::TraceId trace);
  /// Starts (or joins) the peer fetch of `id` on behalf of `call_id`.
  void begin_fetch(const std::string& id, std::uint64_t call_id,
                   obs::TraceId trace);
  /// Gives up on `id`: every waiting call answers kMissingDataStatus so
  /// the client falls back to a full-data resend.
  void fail_fetch(const std::string& id);
  void start_next();
  void arm_load_report();
  void arm_heartbeat();
  [[nodiscard]] sched::Estimation make_estimation(const ProfileDesc& request);
  [[nodiscard]] double noisy(double base);

  std::uint64_t uid_;
  std::string name_;
  ServiceTable& services_;
  double host_power_;
  int machines_;
  SedTuning tuning_;
  Rng rng_;

  net::Endpoint parent_ = net::kNullEndpoint;
  std::deque<PendingJob> queue_;
  int running_ = 0;
  double queued_work_s_ = 0.0;
  std::uint64_t completed_ = 0;
  double busy_seconds_ = 0.0;
  std::vector<JobRecord> job_log_;
  std::vector<std::unique_ptr<ServiceContext>> live_contexts_;
  dtm::DataManager data_manager_;
  /// In-flight peer fetches by data id (ordered: timer/failure handling
  /// iterates deterministically).
  std::map<std::string, FetchState> fetches_;
  /// Calls parked while their referenced data is in flight, by call id.
  std::map<std::uint64_t, BlockedCall> blocked_;
  /// Striped transfers being reassembled, by transfer id (ordered for
  /// deterministic teardown).
  std::map<std::uint64_t, StripeAssembly> stripes_;
  std::uint64_t stripe_counter_ = 0;  ///< transfer-id minting (sender side)
  /// Call ids live on this SED (queued or running); a client retry only
  /// reuses an id after its result message went out (GC_CHECK builds).
  check::UniqueIds live_calls_{"sed live call ids"};
  /// Every call id ever handed to a solve function, add-only — a second
  /// add of the same id is the at-most-once-execution invariant tripping
  /// (GC_CHECK builds). Deliberately NOT reset by fail()/restart().
  check::UniqueIds executed_calls_{"sed executed call ids (at-most-once)"};
  /// Call-id dedup journal: ids accepted onto the queue. A network
  /// duplicate of kCallData hits this set and is ignored; error replies
  /// un-journal their id so the client's corrective resend is accepted.
  std::unordered_set<std::uint64_t> seen_calls_;
  /// Bumped by fail()/shutdown(): pending timers and running jobs from an
  /// older epoch discover they are stale and do nothing.
  std::uint64_t epoch_ = 0;
  std::uint64_t heartbeat_seq_ = 0;
  bool failed_ = false;
};

}  // namespace gc::diet
