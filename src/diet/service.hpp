// Service table and solve-function machinery (DIET_server.h equivalent).
//
// A SED owns a ServiceTable mapping profile descriptions to solve
// functions (Section 4.2.2: diet_service_table_add). Solve functions are
// written in continuation style against a ServiceContext so the same code
// runs under the DES (virtual durations) and under RealEnv (actual
// computation on worker threads); a synchronous adapter reproduces the
// paper's `int solve_serviceName(diet_profile_t*)` shape.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "diet/profile.hpp"
#include "net/env.hpp"
#include "sched/estimation.hpp"

namespace gc::diet {

/// Everything a solve function may touch while servicing one call.
/// finish() must be called exactly once; compute() models/performs the
/// heavy part.
class ServiceContext {
 public:
  virtual ~ServiceContext() = default;

  [[nodiscard]] virtual Profile& profile() = 0;
  [[nodiscard]] virtual net::Env& env() = 0;
  /// Aggregate relative power of the machines behind this SED.
  [[nodiscard]] virtual double host_power() const = 0;
  [[nodiscard]] virtual int machines() const = 0;
  [[nodiscard]] virtual const std::string& sed_name() const = 0;
  /// Per-SED scratch directory (the cluster's NFS working dir stand-in).
  [[nodiscard]] virtual const std::string& work_dir() const = 0;
  [[nodiscard]] virtual Rng& rng() = 0;
  [[nodiscard]] SimTime now() { return env().now(); }

  /// Runs `work` as the service's computation phase. Under the DES the
  /// virtual clock advances by modeled_seconds and `work` then runs
  /// inline (keep it cheap there); under RealEnv `work` runs on a worker
  /// thread for however long it takes. `then(work_result)` continues on
  /// the dispatch context.
  virtual void compute(double modeled_seconds, std::function<int()> work,
                       std::function<void(int)> then) = 0;

  /// Completes the call: ships INOUT/OUT arguments back with the given
  /// solve status (0 = success, like solve_ramsesZoom2's error code).
  virtual void finish(int solve_status) = 0;
};

/// Continuation-style solve function.
using SolveFn = std::function<void(ServiceContext&)>;

/// Paper-style synchronous solve function.
using SyncSolveFn = std::function<int(Profile&)>;

/// Optional plug-in performance estimator: fills service-specific fields
/// of the estimation vector (paper ref [2]). Called on the SED for every
/// scheduling request for this service.
using PerfEstimator = std::function<void(const ProfileDesc& request,
                                         double host_power, int machines,
                                         sched::Estimation& est)>;

struct ServiceEntry {
  ProfileDesc desc;
  SolveFn solve;
  PerfEstimator estimator;  ///< may be null
};

class ServiceTable {
 public:
  explicit ServiceTable(std::size_t max_size = 64) : max_size_(max_size) {}

  /// diet_service_table_add. Fails when full or when an equal profile is
  /// already registered.
  gc::Status add(const ProfileDesc& desc, SolveFn solve,
                 PerfEstimator estimator = nullptr);

  /// Adapter for paper-style synchronous solvers: the whole body runs as
  /// the computation phase; `modeled_cost` prices it for the DES (null =>
  /// zero virtual duration).
  gc::Status add_sync(
      const ProfileDesc& desc, SyncSolveFn solve,
      std::function<double(const Profile&, double power, int machines)>
          modeled_cost = nullptr,
      PerfEstimator estimator = nullptr);

  /// Finds a service whose registered profile matches the request.
  [[nodiscard]] const ServiceEntry* find(const ProfileDesc& request) const;
  [[nodiscard]] const ServiceEntry* find_by_path(const std::string& path) const;

  [[nodiscard]] std::vector<std::string> service_paths() const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// diet_print_service_table.
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t max_size_;
  std::vector<ServiceEntry> entries_;
};

}  // namespace gc::diet
