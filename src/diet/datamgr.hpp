// Server-side persistent data storage (DIET's Data Tree Manager).
//
// DIET's non-VOLATILE persistence modes keep argument data on the server
// between calls so a client can ship an id instead of the bytes:
//
//   call 1: client -> SED  full data, persistence = DIET_PERSISTENT
//           SED stores it under the argument's data id
//   call 2: client -> SED  reference (id only)
//           SED materializes the stored value before solving
//
// The store is LRU-bounded by bytes; eviction makes the next reference
// miss, which the client handles by resending the full data (see
// Client::handle_result).
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "check/invariant.hpp"
#include "diet/data.hpp"

namespace gc::diet {

class DataManager {
 public:
  /// max_bytes bounds the total wire_bytes of stored values (0 = unbounded).
  explicit DataManager(std::int64_t max_bytes = 0) : max_bytes_(max_bytes) {}

  /// Stores (or refreshes) a value under its data id; no-op for values
  /// without an id or for references.
  void store(const ArgValue& value);

  /// Looks up a stored value; nullptr on miss. Refreshes LRU order.
  [[nodiscard]] const ArgValue* lookup(const std::string& data_id);

  /// Explicit removal (DIET_VOLATILE cleanup / diet_free_data).
  bool erase(const std::string& data_id);

  /// Drops everything — a crashed server's store does not survive the
  /// restart; clients recover through the missing-data resend path.
  void clear();

  [[nodiscard]] std::size_t count() const { return store_.size(); }
  [[nodiscard]] std::int64_t bytes() const { return bytes_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  void evict_to_fit();

  struct Entry {
    ArgValue value;
    std::list<std::string>::iterator lru_position;
  };

  std::int64_t max_bytes_;
  std::int64_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::unordered_map<std::string, Entry> store_;
  std::list<std::string> lru_;  ///< front = most recently used
  /// Shadow accounting (GC_CHECK builds): catches bytes_/LRU drift.
  check::StoreAudit audit_{"sed data store"};
};

}  // namespace gc::diet
