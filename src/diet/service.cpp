#include "diet/service.hpp"

#include "common/strings.hpp"

namespace gc::diet {

gc::Status ServiceTable::add(const ProfileDesc& desc, SolveFn solve,
                             PerfEstimator estimator) {
  if (!desc.valid()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "invalid profile for service " + desc.path());
  }
  if (entries_.size() >= max_size_) {
    return make_error(ErrorCode::kOutOfRange, "service table full");
  }
  for (const auto& e : entries_) {
    if (e.desc.matches(desc)) {
      return make_error(ErrorCode::kAlreadyExists,
                        "service already registered: " + desc.path());
    }
  }
  entries_.push_back(ServiceEntry{desc, std::move(solve), std::move(estimator)});
  return Status::ok();
}

gc::Status ServiceTable::add_sync(
    const ProfileDesc& desc, SyncSolveFn solve,
    std::function<double(const Profile&, double, int)> modeled_cost,
    PerfEstimator estimator) {
  SolveFn wrapper = [solve = std::move(solve),
                     modeled_cost = std::move(modeled_cost)](
                        ServiceContext& ctx) {
    const double cost =
        modeled_cost
            ? modeled_cost(ctx.profile(), ctx.host_power(), ctx.machines())
            : 0.0;
    ctx.compute(
        cost, [&ctx, &solve]() { return solve(ctx.profile()); },
        [&ctx](int status) { ctx.finish(status); });
  };
  return add(desc, std::move(wrapper), std::move(estimator));
}

const ServiceEntry* ServiceTable::find(const ProfileDesc& request) const {
  for (const auto& e : entries_) {
    if (e.desc.matches(request)) return &e;
  }
  return nullptr;
}

const ServiceEntry* ServiceTable::find_by_path(const std::string& path) const {
  for (const auto& e : entries_) {
    if (e.desc.path() == path) return &e;
  }
  return nullptr;
}

std::vector<std::string> ServiceTable::service_paths() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.desc.path());
  return out;
}

std::string ServiceTable::to_string() const {
  std::string out = strformat("service table (%zu/%zu):\n", entries_.size(),
                              max_size_);
  for (const auto& e : entries_) {
    out += strformat("  %-24s in:0..%d inout:..%d out:..%d\n",
                     e.desc.path().c_str(), e.desc.last_in(),
                     e.desc.last_inout(), e.desc.last_out());
  }
  return out;
}

}  // namespace gc::diet
