// DIET data model: argument descriptors and values.
//
// Mirrors DIET_data.h from the paper: every service argument has a
// container type (scalar/vector/matrix/string/file), a base type, a
// persistence mode, and a direction implied by its index relative to the
// profile's last_in/last_inout/last_out markers (Section 4.2.1).
//
// File arguments never carry their contents through the middleware: like
// real DIET, the descriptor carries the path and size, and the transfer is
// priced separately (Envelope::modeled_extra_bytes) — in RealEnv the file
// is on a filesystem both sides can reach (the paper's NFS assumption).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/log.hpp"
#include "common/status.hpp"
#include "net/codec.hpp"

namespace gc::diet {

enum class DataType : std::uint8_t {
  kScalar = 0,
  kVector = 1,
  kMatrix = 2,
  kString = 3,
  kFile = 4,
};

enum class BaseType : std::uint8_t {
  kChar = 0,
  kShort = 1,
  kInt = 2,
  kLongInt = 3,
  kFloat = 4,
  kDouble = 5,
};

/// DIET persistence modes. kVolatile data lives for one call; persistent
/// data stays on the server for reuse by later calls (Section 4.2.3 uses
/// DIET_VOLATILE throughout).
enum class Persistence : std::uint8_t {
  kVolatile = 0,
  kPersistentReturn = 1,
  kPersistent = 2,
  kSticky = 3,
};

enum class Direction : std::uint8_t { kIn = 0, kInOut = 1, kOut = 2 };

const char* to_string(DataType t);
const char* to_string(BaseType t);
const char* to_string(Persistence p);

/// Bytes per element of a base type.
std::size_t base_type_size(BaseType t);

/// Static description of one argument (what profile *descriptions* carry;
/// this is what travels in scheduling requests, not the data itself).
struct ArgDesc {
  DataType type = DataType::kScalar;
  BaseType base = BaseType::kInt;
  Persistence persistence = Persistence::kVolatile;
  std::uint64_t rows = 1;  ///< vector length / matrix rows / string length
  std::uint64_t cols = 1;  ///< matrix cols (1 otherwise)

  /// rows * cols, clamped so the product (and payload_bytes() derived
  /// from it) cannot wrap — a decoded descriptor may carry hostile shapes.
  [[nodiscard]] std::uint64_t element_count() const;
  [[nodiscard]] std::int64_t payload_bytes() const;

  /// Shape compatibility for service matching: same container and base
  /// type (sizes may differ call to call).
  [[nodiscard]] bool matches(const ArgDesc& other) const {
    return type == other.type && base == other.base;
  }

  void serialize(net::Writer& w) const;
  static ArgDesc deserialize(net::Reader& r);
};

/// One argument with its (possibly absent) value.
class ArgValue {
 public:
  ArgDesc desc;

  // --- typed setters (allocate/copy into the owned buffer) ---
  template <typename T>
  gc::Status set_scalar(T value, BaseType base, Persistence mode);

  template <typename T>
  gc::Status set_vector(std::span<const T> values, BaseType base,
                        Persistence mode);

  gc::Status set_string(const std::string& value, Persistence mode);

  /// File argument: `path` may be empty for a not-yet-produced OUT file.
  /// `modeled_bytes` < 0 means "stat the file when sending" (RealEnv);
  /// >= 0 pins the modeled transfer volume (SimEnv).
  gc::Status set_file(const std::string& path, Persistence mode,
                      std::int64_t modeled_bytes = -1);

  // --- typed getters ---
  template <typename T>
  [[nodiscard]] gc::Result<T> get_scalar() const;

  template <typename T>
  [[nodiscard]] gc::Result<std::vector<T>> get_vector() const;

  [[nodiscard]] gc::Result<std::string> get_string() const;

  struct FileRef {
    std::string path;
    std::int64_t size_bytes;
  };
  [[nodiscard]] gc::Result<FileRef> get_file() const;

  // --- persistent data management (DIET's DTM) ---
  // A non-volatile argument carries a data id; once a server has stored
  // the value under that id, later calls can ship a *reference* (id only,
  // no payload) instead of the data. See diet/datamgr.hpp.

  /// Sets/returns the data id (empty = none assigned yet).
  void set_data_id(std::string id) { data_id_ = std::move(id); }
  [[nodiscard]] const std::string& data_id() const { return data_id_; }

  /// Content-derived id (FNV-1a of payload or file path+size); used by
  /// clients to auto-name persistent data.
  [[nodiscard]] std::string content_id() const;

  /// True when this argument is an id-only reference (no payload).
  [[nodiscard]] bool is_reference() const { return is_reference_; }

  /// Converts this argument into a reference: keeps the descriptor and
  /// data id, drops the payload. Requires a non-empty data id.
  void make_reference();

  /// Fills this reference in from a stored value (server side); keeps the
  /// reference's persistence mode.
  void materialize_from(const ArgValue& stored);

  [[nodiscard]] bool has_value() const { return has_value_; }
  [[nodiscard]] const net::Bytes& raw() const { return data_; }
  /// Pointer to the in-place value storage (the C API's diet_scalar_get
  /// hands this out; DIET lets callers read OUT data in place).
  [[nodiscard]] const void* data_ptr() const {
    return data_.empty() ? nullptr : data_.data();
  }
  [[nodiscard]] const std::string& file_path() const { return file_path_; }
  [[nodiscard]] std::int64_t modeled_bytes() const { return modeled_bytes_; }

  /// Wire volume this argument contributes when shipped.
  [[nodiscard]] std::int64_t wire_bytes() const;

  void serialize_value(net::Writer& w) const;
  void deserialize_value(net::Reader& r);

  void clear_value() {
    has_value_ = false;
    is_reference_ = false;
    data_.clear();
    file_path_.clear();
    modeled_bytes_ = 0;
  }

 private:
  bool has_value_ = false;
  bool is_reference_ = false;
  net::Bytes data_;        ///< scalar/vector/matrix/string payload
  std::string file_path_;  ///< file argument path
  std::int64_t modeled_bytes_ = 0;
  std::string data_id_;    ///< persistent-data identity (may be empty)
};

// --- template implementations ---

template <typename T>
gc::Status ArgValue::set_scalar(T value, BaseType base, Persistence mode) {
  if (sizeof(T) != base_type_size(base)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "scalar size does not match base type");
  }
  desc.type = DataType::kScalar;
  desc.base = base;
  desc.persistence = mode;
  desc.rows = desc.cols = 1;
  data_.resize(sizeof(T));
  std::memcpy(data_.data(), &value, sizeof(T));
  file_path_.clear();
  modeled_bytes_ = 0;
  has_value_ = true;
  return Status::ok();
}

template <typename T>
gc::Status ArgValue::set_vector(std::span<const T> values, BaseType base,
                                Persistence mode) {
  if (sizeof(T) != base_type_size(base)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "element size does not match base type");
  }
  desc.type = DataType::kVector;
  desc.base = base;
  desc.persistence = mode;
  desc.rows = values.size();
  desc.cols = 1;
  data_.resize(values.size_bytes());
  if (!values.empty()) {
    std::memcpy(data_.data(), values.data(), values.size_bytes());
  }
  file_path_.clear();
  modeled_bytes_ = 0;
  has_value_ = true;
  return Status::ok();
}

template <typename T>
gc::Result<T> ArgValue::get_scalar() const {
  if (!has_value_ || desc.type != DataType::kScalar) {
    return make_error(ErrorCode::kFailedPrecondition, "no scalar value");
  }
  if (data_.size() != sizeof(T)) {
    return make_error(ErrorCode::kInvalidArgument, "scalar type mismatch");
  }
  T out;
  std::memcpy(&out, data_.data(), sizeof(T));
  return out;
}

template <typename T>
gc::Result<std::vector<T>> ArgValue::get_vector() const {
  if (!has_value_ || desc.type != DataType::kVector) {
    return make_error(ErrorCode::kFailedPrecondition, "no vector value");
  }
  if (data_.size() % sizeof(T) != 0) {
    return make_error(ErrorCode::kInvalidArgument, "vector type mismatch");
  }
  std::vector<T> out(data_.size() / sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), data_.data(), data_.size());
  return out;
}

}  // namespace gc::diet
