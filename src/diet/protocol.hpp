// Wire protocol between DIET actors (client, MA, LA, SED).
//
// Message flow for one diet_call:
//
//   client --kRequestSubmit--> MA
//   MA     --kRequestCollect-> LAs --kRequestCollect-> SEDs
//   SEDs   --kCandidates-----> LAs --kCandidates-----> MA   (sorted per hop)
//   MA     --kRequestReply---> client                       (chosen SED)
//   client --kCallData-------> SED                          (IN/INOUT data)
//   SED    --kCallStarted----> client                       (service began)
//   SED    --kCallResult-----> client                       (OUT/INOUT data)
//   SED    --kJobDone--------> LA --kJobDone--> MA          (bookkeeping)
//
// plus deployment-time registration and periodic load reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "diet/profile.hpp"
#include "net/message.hpp"
#include "sched/estimation.hpp"

namespace gc::diet {

/// Solve-status value a SED returns when a call referenced persistent
/// data it no longer holds (evicted / never seen); the client reacts by
/// resending the full data.
inline constexpr std::int32_t kMissingDataStatus = -3;

enum MsgType : std::uint32_t {
  kSedRegister = 1,
  kAgentRegister = 2,
  kRegisterAck = 3,
  kRequestSubmit = 10,
  kRequestCollect = 11,
  kCandidates = 12,
  kRequestReply = 13,
  kCallData = 20,
  kCallStarted = 21,
  kCallResult = 22,
  kJobDone = 23,
  kLoadReport = 30,
  kHeartbeat = 31,
  // --- MA federation (peer master agents, multi-hierarchy deployments) ---
  kPeerAnnounce = 32,    ///< MA -> peer MA: name/uid + offered services
  kPeerCollect = 33,     ///< MA -> peer MA: forwarded RequestCollectMsg
  kPeerCandidates = 34,  ///< peer MA -> MA: top-k merged answer
};

struct SedRegisterMsg {
  std::uint64_t sed_uid = 0;
  std::string name;
  double host_power = 1.0;
  std::int32_t machines = 1;
  std::vector<ProfileDesc> services;

  net::Bytes encode() const;
  static SedRegisterMsg decode(const net::Bytes& payload);
};

struct AgentRegisterMsg {
  std::string name;
  std::vector<std::string> services;  ///< service paths available below

  net::Bytes encode() const;
  static AgentRegisterMsg decode(const net::Bytes& payload);
};

/// One persistent input the request depends on: the data id plus the wire
/// volume shipping it would cost. Rides submit/collect messages so agents
/// can price data locality against their replica catalogs.
struct DataDep {
  std::string data_id;
  std::int64_t bytes = 0;
};

struct RequestSubmitMsg {
  std::uint64_t client_request_id = 0;
  ProfileDesc desc;
  std::int64_t in_bytes = 0;
  /// Persistent inputs (trailing-optional on the wire: encoded only when
  /// non-empty, so requests without persistent data — every fault-free
  /// volatile run — keep their exact pre-catalog encoding).
  std::vector<DataDep> deps;

  net::Bytes encode() const;
  static RequestSubmitMsg decode(const net::Bytes& payload);
};

struct RequestCollectMsg {
  std::uint64_t request_key = 0;  ///< MA-global key
  ProfileDesc desc;
  std::int64_t in_bytes = 0;
  /// Remaining time budget for answering; each agent waits at most this
  /// long and hands its children a smaller share, so partial answers from
  /// a subtree still reach the root before IT gives up. 0 = use the
  /// receiving agent's configured timeout.
  double timeout_s = 0.0;
  /// Persistent inputs, forwarded from the submit (trailing-optional).
  std::vector<DataDep> deps;
  /// Federation section (trailing-optional as a unit): uid of the MA the
  /// request entered the federation at, and how many further peer hops the
  /// receiving MA may still grant. Both zero on every intra-hierarchy
  /// collect, which keeps the pre-federation encoding byte-identical; when
  /// either is set the dep count is always written (possibly 0) so the
  /// section's position is unambiguous.
  std::uint32_t origin_uid = 0;
  std::uint32_t ttl = 0;

  net::Bytes encode() const;
  static RequestCollectMsg decode(const net::Bytes& payload);
};

struct CandidatesMsg {
  std::uint64_t request_key = 0;
  std::vector<sched::Candidate> candidates;

  net::Bytes encode() const;
  static CandidatesMsg decode(const net::Bytes& payload);
};

struct RequestReplyMsg {
  std::uint64_t client_request_id = 0;
  bool found = false;
  sched::Candidate chosen;
  /// Of the request's declared deps: ids the MA's catalog can resolve to
  /// a live replica somewhere in the hierarchy. The client ships these as
  /// references even to a SED that does not hold them — the SED pulls
  /// them peer-to-peer. Trailing-optional on the wire.
  std::vector<std::string> available_ids;

  net::Bytes encode() const;
  static RequestReplyMsg decode(const net::Bytes& payload);
};

struct CallDataMsg {
  std::uint64_t call_id = 0;  ///< client request id, reused
  std::string path;
  std::int32_t last_in = -1;
  std::int32_t last_inout = -1;
  std::int32_t last_out = -1;
  net::Bytes inputs;  ///< Profile::serialize_inputs payload

  net::Bytes encode() const;
  static CallDataMsg decode(const net::Bytes& payload);
};

struct CallStartedMsg {
  std::uint64_t call_id = 0;

  net::Bytes encode() const;
  static CallStartedMsg decode(const net::Bytes& payload);
};

struct CallResultMsg {
  std::uint64_t call_id = 0;
  std::int32_t solve_status = 0;  ///< solve function's return value
  net::Bytes outputs;             ///< Profile::serialize_outputs payload

  net::Bytes encode() const;
  static CallResultMsg decode(const net::Bytes& payload);
};

struct JobDoneMsg {
  std::uint64_t sed_uid = 0;
  std::uint64_t call_id = 0;
  double busy_seconds = 0.0;

  net::Bytes encode() const;
  static JobDoneMsg decode(const net::Bytes& payload);
};

/// Periodic liveness beacon from a child (SED or LA) to its parent agent.
/// A parent that misses them long enough marks the child dead and stops
/// offering it in finding results; a later heartbeat revives it.
struct HeartbeatMsg {
  std::uint64_t uid = 0;  ///< sed uid; 0 for an LA (identified by sender)
  std::uint64_t seq = 0;  ///< per-sender beacon counter, for tracing

  net::Bytes encode() const;
  static HeartbeatMsg decode(const net::Bytes& payload);
};

/// MA -> peer MA advertisement: sent on federation connect and whenever
/// the sender's service set changes, so every peer knows which shards can
/// answer which services before forwarding a collect.
struct PeerAnnounceMsg {
  std::uint32_t ma_uid = 0;
  std::string name;
  std::vector<std::string> services;  ///< service paths offered by the shard

  net::Bytes encode() const;
  static PeerAnnounceMsg decode(const net::Bytes& payload);
};

/// Peer MA's answer to a kPeerCollect: the shard's best candidates,
/// already sorted and truncated to the federation's top-k bound so
/// candidate fan-in at the originating MA stays constant per peer.
struct PeerCandidatesMsg {
  std::uint64_t request_key = 0;
  std::uint32_t ma_uid = 0;  ///< answering shard, for tracing
  std::vector<sched::Candidate> candidates;

  net::Bytes encode() const;
  static PeerCandidatesMsg decode(const net::Bytes& payload);
};

struct LoadReportMsg {
  std::uint64_t sed_uid = 0;
  double queue_length = 0.0;
  double queued_work_s = 0.0;
  std::uint64_t jobs_completed = 0;

  net::Bytes encode() const;
  static LoadReportMsg decode(const net::Bytes& payload);
};

}  // namespace gc::diet
