// Scheduling agents: Master Agent (MA) and Local Agent (LA).
//
// "When a Master Agent receives a computation request from a client,
// agents collect computation abilities from servers (through the
// hierarchy) and chooses the best one according to some scheduling
// heuristics." (Section 2.1.)
//
// One class implements both kinds: an LA is an Agent with a parent; the MA
// is the root and is the only one that picks a server and answers clients.
// Every level applies the scheduling Policy to the candidates flowing up,
// and the MA additionally tracks its outstanding assignments per SED (the
// "list of requests" of Section 2.1) — the state that makes the default
// policy distribute simultaneous requests evenly (Figure 4 left).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "diet/protocol.hpp"
#include "dtm/catalog.hpp"
#include "dtm/messages.hpp"
#include "net/env.hpp"
#include "obs/trace.hpp"
#include "sched/policy.hpp"

namespace gc::diet {

struct AgentTuning {
  /// CPU time an agent spends per scheduling hop (request fan-out or
  /// response aggregation). Exclusive: an agent is a single-threaded
  /// reactor, so concurrent requests queue on it — this is what makes a
  /// flat (LA-less) hierarchy degrade with the SED count (bench A2).
  double processing_delay = 0.2e-3;
  /// Additional exclusive CPU per message sent or received (CORBA
  /// marshalling/unmarshalling of one request or candidate list).
  double per_message_cost = 10e-6;
  /// Log-normal CV applied to the processing delay.
  double delay_noise_cv = 0.06;
  /// How long to wait for children before scheduling with partial
  /// information (tolerates dead SEDs).
  double collect_timeout = 5.0;
  /// Evict a child after this many *consecutive* collect timeouts, so a
  /// dead SED stops slowing every request down. 0 disables eviction.
  int max_child_timeouts = 2;
  /// LA only: cap on candidates forwarded to the parent (0 = all).
  std::size_t forward_limit = 0;
  /// Period of liveness beacons this agent (LA) sends to its parent;
  /// 0 disables them (the default — no extra traffic in fault-free runs).
  double heartbeat_period = 0.0;
  /// Mark a child dead after this long without a heartbeat from it; dead
  /// children are skipped when collecting candidates, and revived by
  /// their next heartbeat (a drop-tolerant alternative to the strike
  /// eviction above, which erases for good). 0 disables the watchdog.
  double heartbeat_timeout = 0.0;

  // --- MA federation (multi-hierarchy deployments) ---
  /// Total federation hops a request may take from the MA it entered at.
  /// 1 = forward to direct peers only (their peers see ttl 0 and answer
  /// from their own shard); 0 disables forwarding entirely.
  std::uint32_t peer_ttl = 1;
  /// Bounded candidate fan-in: a peer MA answers with at most this many
  /// (ranked-best) candidates, so merge cost at the originating MA stays
  /// constant per shard no matter how large the peer's subtree is. 0 = all.
  std::size_t peer_top_k = 4;
  /// Forward to capable peers on every request, not only when no local
  /// child offers the service (the on-miss default).
  bool federate_always = false;
};

class Agent final : public net::Actor {
 public:
  enum class Kind { kMaster, kLocal };

  Agent(Kind kind, std::string name, std::unique_ptr<sched::Policy> policy,
        AgentTuning tuning, std::uint64_t seed);

  /// LA only: announces this agent (and its current services) to a parent.
  void register_at(net::Endpoint parent);

  void on_message(const net::Envelope& envelope) override;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t requests_handled() const {
    return requests_handled_;
  }
  [[nodiscard]] std::size_t child_count() const { return children_.size(); }
  [[nodiscard]] const std::set<std::string>& services() const {
    return services_;
  }
  /// MA: requests assigned to a SED and not yet reported done.
  [[nodiscard]] double outstanding(std::uint64_t sed_uid) const;
  /// MA: total assignments ever made to a SED (Figure 4's request counts).
  [[nodiscard]] std::uint64_t assigned_total(std::uint64_t sed_uid) const;
  [[nodiscard]] const sched::Policy& policy() const { return *policy_; }

  /// Replaces the scheduling policy (the plug-in scheduler hook).
  void set_policy(std::unique_ptr<sched::Policy> policy);

  /// Marks this agent dead (LA death fault): it detaches from the Env and
  /// ignores everything still in flight towards it.
  void fail();
  [[nodiscard]] bool failed() const { return failed_; }

  /// Stops the periodic loops (own heartbeat, child watchdogs) without
  /// failing the agent; RealEnv tests call this before Env::stop().
  void shutdown();

  /// Children currently marked dead by the heartbeat watchdog.
  [[nodiscard]] std::uint64_t heartbeat_evictions() const {
    return heartbeat_evictions_;
  }

  /// Replica catalog for this agent's subtree (whole hierarchy at the MA).
  [[nodiscard]] const dtm::ReplicaCatalog& catalog() const {
    return catalog_;
  }

  // --- MA federation -------------------------------------------------
  /// Gives this MA its federation identity: a nonzero uid (loop detection)
  /// and a disjoint request-key namespace (keys must be unique across the
  /// whole federation, since forwarded collects keep their key).
  void set_federation(std::uint32_t ma_uid, std::uint64_t request_key_base);
  /// MA only: adds a peer MA and announces this shard's services to it.
  /// Requires set_federation() first. Idempotent per endpoint.
  void connect_peer(net::Endpoint peer);
  [[nodiscard]] std::uint32_t ma_uid() const { return ma_uid_; }
  [[nodiscard]] std::size_t peer_count() const { return peers_.size(); }

  /// Federation counters, exposed for tests and the serving bench.
  struct PeerStats {
    std::uint64_t forwards = 0;    ///< kPeerCollect sent to peers
    std::uint64_t replies = 0;     ///< kPeerCandidates answered
    std::uint64_t dup_drops = 0;   ///< same key arrived twice (multi-path)
    std::uint64_t loop_drops = 0;  ///< forward looped back to its origin
    std::uint64_t evictions = 0;   ///< peers the watchdog marked dead
    std::uint64_t candidates_returned = 0;  ///< total across replies
  };
  [[nodiscard]] const PeerStats& peer_stats() const { return peer_stats_; }

 private:
  struct Child {
    net::Endpoint endpoint;
    bool is_sed;
    std::string name;
    std::uint64_t sed_uid = 0;   ///< 0 for LA children
    std::set<std::string> services;
    int consecutive_timeouts = 0;
    bool alive = true;           ///< false = heartbeat watchdog fired
    net::TimerId hb_timer = 0;   ///< pending heartbeat deadline
  };

  /// A peer MA in the federation. Unlike children, peers are equals: they
  /// are never evicted for good, only marked dead by the heartbeat
  /// watchdog (shard ejection) until their beacons resume.
  struct Peer {
    net::Endpoint endpoint = net::kNullEndpoint;
    std::uint32_t uid = 0;  ///< 0 until its announce arrives
    std::string name;
    std::set<std::string> services;
    bool alive = true;
    net::TimerId hb_timer = 0;
  };

  struct Pending {
    bool from_client = false;
    bool from_peer = false;  ///< kPeerCollect: answer with kPeerCandidates
    /// MA uid the request entered the federation at (loop detection).
    std::uint32_t origin_uid = 0;
    /// Federation hops this agent may still grant when forwarding.
    std::uint32_t peer_budget = 0;
    net::Endpoint reply_to = net::kNullEndpoint;
    std::uint64_t client_request_id = 0;
    std::string service;
    std::int64_t in_bytes = 0;
    std::size_t expected = 0;
    std::size_t received = 0;
    std::vector<sched::Candidate> candidates;
    std::vector<net::Endpoint> asked;
    std::set<net::Endpoint> answered;
    bool finalizing = false;
    net::TimerId timeout_timer = 0;
    obs::TraceId trace_id = 0;  ///< carried from the incoming envelope
    obs::SpanId span = 0;       ///< collect -> finalize on this agent
    /// Persistent inputs declared by the client; priced against the
    /// catalog when candidates are finalized (locality-aware scheduling).
    std::vector<DataDep> deps;
  };

  void handle_sed_register(const net::Envelope& envelope);
  void handle_agent_register(const net::Envelope& envelope);
  void handle_submit(const net::Envelope& envelope);
  void handle_collect(const net::Envelope& envelope);
  void handle_candidates(const net::Envelope& envelope);
  void handle_job_done(const net::Envelope& envelope);
  void handle_heartbeat(const net::Envelope& envelope);
  void handle_peer_announce(const net::Envelope& envelope);
  void handle_peer_collect(const net::Envelope& envelope);
  void handle_peer_candidates(const net::Envelope& envelope);
  void handle_data_register(const net::Envelope& envelope);
  void handle_data_unregister(const net::Envelope& envelope);
  void handle_data_locate(const net::Envelope& envelope);
  void handle_data_stripe(const net::Envelope& envelope);
  /// Drops every replica a (dead/restarted) SED held from this catalog
  /// and, when anything was dropped, tells the parent to do the same.
  void drop_sed_replicas(std::uint64_t sed_uid);
  /// Fills each candidate's data-locality estimation fields from this
  /// agent's catalog (bytes that must move + modeled transfer time).
  void fill_locality(Pending& pending);
  void update_catalog_gauge();
  [[nodiscard]] Child* find_child(net::Endpoint endpoint);
  [[nodiscard]] Peer* find_peer(net::Endpoint endpoint);
  /// (Re)arms the heartbeat deadline for one child.
  void arm_child_deadline(net::Endpoint child_endpoint);
  void arm_heartbeat();
  /// (Re)arms the shard-ejection deadline for one peer MA.
  void arm_peer_deadline(net::Endpoint peer_endpoint);
  /// Periodic liveness beacons to every peer MA (armed once, on the first
  /// connect_peer, when a heartbeat period is configured).
  void arm_peer_beat();
  void announce_to_peers();
  /// Shared tail of handle_candidates / handle_peer_candidates: merge one
  /// answer into the pending collect and finalize when all arrived.
  void accumulate_candidates(std::uint64_t key,
                             std::vector<sched::Candidate> candidates,
                             net::Endpoint from);

  void start_collect(std::uint64_t key, Pending pending,
                     const RequestCollectMsg& msg);
  void finalize(std::uint64_t key);
  /// Timeout bookkeeping: non-answering children accumulate strikes and
  /// are eventually evicted; answering children reset.
  void note_timeouts(const Pending& pending);
  void propagate_services();
  [[nodiscard]] double noisy(double base);

  /// Runs fn after `cost` seconds of *exclusive* agent CPU: work queues
  /// behind whatever the agent is already processing.
  void process_for(double cost, std::function<void()> fn);
  /// Accounts CPU without a continuation (cheap bookkeeping like
  /// unmarshalling one reply).
  void charge_cpu(double cost);

  Kind kind_;
  std::string name_;
  std::unique_ptr<sched::Policy> policy_;
  AgentTuning tuning_;
  Rng rng_;

  net::Endpoint parent_ = net::kNullEndpoint;
  std::vector<Child> children_;
  /// MA only: peer master agents, in connect order (deterministic fan-out).
  std::vector<Peer> peers_;
  std::uint32_t ma_uid_ = 0;  ///< 0 = not federated
  bool peer_beat_armed_ = false;
  PeerStats peer_stats_;
  /// Peer-collect keys already expanded here, so the same request arriving
  /// along two federation paths (or duplicated on the wire) collects once.
  std::set<std::uint64_t> seen_peer_collects_;
  std::set<std::string> services_;
  /// Which SEDs below this agent hold which persistent data ids.
  dtm::ReplicaCatalog catalog_;

  std::uint64_t next_key_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
  double cpu_busy_until_ = 0.0;

  // MA bookkeeping (Section 2.1's per-request state).
  std::unordered_map<std::uint64_t, double> outstanding_;
  std::unordered_map<std::uint64_t, std::uint64_t> assigned_total_;
  std::uint64_t requests_handled_ = 0;

  /// MA: submit keys already expanded, so a duplicated kRequestSubmit
  /// does not fan out (and skew the assignment bookkeeping) twice.
  std::set<std::pair<net::Endpoint, std::uint64_t>> seen_submits_;
  std::uint64_t heartbeat_evictions_ = 0;
  std::uint64_t heartbeat_seq_ = 0;
  std::uint64_t epoch_ = 0;  ///< bumped by fail()/shutdown(); kills loops
  bool failed_ = false;
};

}  // namespace gc::diet
