// Scheduling agents: Master Agent (MA) and Local Agent (LA).
//
// "When a Master Agent receives a computation request from a client,
// agents collect computation abilities from servers (through the
// hierarchy) and chooses the best one according to some scheduling
// heuristics." (Section 2.1.)
//
// One class implements both kinds: an LA is an Agent with a parent; the MA
// is the root and is the only one that picks a server and answers clients.
// Every level applies the scheduling Policy to the candidates flowing up,
// and the MA additionally tracks its outstanding assignments per SED (the
// "list of requests" of Section 2.1) — the state that makes the default
// policy distribute simultaneous requests evenly (Figure 4 left).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "diet/protocol.hpp"
#include "dtm/catalog.hpp"
#include "dtm/messages.hpp"
#include "net/env.hpp"
#include "obs/trace.hpp"
#include "sched/policy.hpp"

namespace gc::diet {

struct AgentTuning {
  /// CPU time an agent spends per scheduling hop (request fan-out or
  /// response aggregation). Exclusive: an agent is a single-threaded
  /// reactor, so concurrent requests queue on it — this is what makes a
  /// flat (LA-less) hierarchy degrade with the SED count (bench A2).
  double processing_delay = 0.2e-3;
  /// Additional exclusive CPU per message sent or received (CORBA
  /// marshalling/unmarshalling of one request or candidate list).
  double per_message_cost = 10e-6;
  /// Log-normal CV applied to the processing delay.
  double delay_noise_cv = 0.06;
  /// How long to wait for children before scheduling with partial
  /// information (tolerates dead SEDs).
  double collect_timeout = 5.0;
  /// Evict a child after this many *consecutive* collect timeouts, so a
  /// dead SED stops slowing every request down. 0 disables eviction.
  int max_child_timeouts = 2;
  /// LA only: cap on candidates forwarded to the parent (0 = all).
  std::size_t forward_limit = 0;
  /// Period of liveness beacons this agent (LA) sends to its parent;
  /// 0 disables them (the default — no extra traffic in fault-free runs).
  double heartbeat_period = 0.0;
  /// Mark a child dead after this long without a heartbeat from it; dead
  /// children are skipped when collecting candidates, and revived by
  /// their next heartbeat (a drop-tolerant alternative to the strike
  /// eviction above, which erases for good). 0 disables the watchdog.
  double heartbeat_timeout = 0.0;
};

class Agent final : public net::Actor {
 public:
  enum class Kind { kMaster, kLocal };

  Agent(Kind kind, std::string name, std::unique_ptr<sched::Policy> policy,
        AgentTuning tuning, std::uint64_t seed);

  /// LA only: announces this agent (and its current services) to a parent.
  void register_at(net::Endpoint parent);

  void on_message(const net::Envelope& envelope) override;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t requests_handled() const {
    return requests_handled_;
  }
  [[nodiscard]] std::size_t child_count() const { return children_.size(); }
  [[nodiscard]] const std::set<std::string>& services() const {
    return services_;
  }
  /// MA: requests assigned to a SED and not yet reported done.
  [[nodiscard]] double outstanding(std::uint64_t sed_uid) const;
  /// MA: total assignments ever made to a SED (Figure 4's request counts).
  [[nodiscard]] std::uint64_t assigned_total(std::uint64_t sed_uid) const;
  [[nodiscard]] const sched::Policy& policy() const { return *policy_; }

  /// Replaces the scheduling policy (the plug-in scheduler hook).
  void set_policy(std::unique_ptr<sched::Policy> policy);

  /// Marks this agent dead (LA death fault): it detaches from the Env and
  /// ignores everything still in flight towards it.
  void fail();
  [[nodiscard]] bool failed() const { return failed_; }

  /// Stops the periodic loops (own heartbeat, child watchdogs) without
  /// failing the agent; RealEnv tests call this before Env::stop().
  void shutdown();

  /// Children currently marked dead by the heartbeat watchdog.
  [[nodiscard]] std::uint64_t heartbeat_evictions() const {
    return heartbeat_evictions_;
  }

  /// Replica catalog for this agent's subtree (whole hierarchy at the MA).
  [[nodiscard]] const dtm::ReplicaCatalog& catalog() const {
    return catalog_;
  }

 private:
  struct Child {
    net::Endpoint endpoint;
    bool is_sed;
    std::string name;
    std::uint64_t sed_uid = 0;   ///< 0 for LA children
    std::set<std::string> services;
    int consecutive_timeouts = 0;
    bool alive = true;           ///< false = heartbeat watchdog fired
    net::TimerId hb_timer = 0;   ///< pending heartbeat deadline
  };

  struct Pending {
    bool from_client = false;
    net::Endpoint reply_to = net::kNullEndpoint;
    std::uint64_t client_request_id = 0;
    std::string service;
    std::int64_t in_bytes = 0;
    std::size_t expected = 0;
    std::size_t received = 0;
    std::vector<sched::Candidate> candidates;
    std::vector<net::Endpoint> asked;
    std::set<net::Endpoint> answered;
    bool finalizing = false;
    net::TimerId timeout_timer = 0;
    obs::TraceId trace_id = 0;  ///< carried from the incoming envelope
    obs::SpanId span = 0;       ///< collect -> finalize on this agent
    /// Persistent inputs declared by the client; priced against the
    /// catalog when candidates are finalized (locality-aware scheduling).
    std::vector<DataDep> deps;
  };

  void handle_sed_register(const net::Envelope& envelope);
  void handle_agent_register(const net::Envelope& envelope);
  void handle_submit(const net::Envelope& envelope);
  void handle_collect(const net::Envelope& envelope);
  void handle_candidates(const net::Envelope& envelope);
  void handle_job_done(const net::Envelope& envelope);
  void handle_heartbeat(const net::Envelope& envelope);
  void handle_data_register(const net::Envelope& envelope);
  void handle_data_unregister(const net::Envelope& envelope);
  void handle_data_locate(const net::Envelope& envelope);
  /// Drops every replica a (dead/restarted) SED held from this catalog
  /// and, when anything was dropped, tells the parent to do the same.
  void drop_sed_replicas(std::uint64_t sed_uid);
  /// Fills each candidate's data-locality estimation fields from this
  /// agent's catalog (bytes that must move + modeled transfer time).
  void fill_locality(Pending& pending);
  void update_catalog_gauge();
  [[nodiscard]] Child* find_child(net::Endpoint endpoint);
  /// (Re)arms the heartbeat deadline for one child.
  void arm_child_deadline(net::Endpoint child_endpoint);
  void arm_heartbeat();

  void start_collect(std::uint64_t key, Pending pending,
                     const RequestCollectMsg& msg);
  void finalize(std::uint64_t key);
  /// Timeout bookkeeping: non-answering children accumulate strikes and
  /// are eventually evicted; answering children reset.
  void note_timeouts(const Pending& pending);
  void propagate_services();
  [[nodiscard]] double noisy(double base);

  /// Runs fn after `cost` seconds of *exclusive* agent CPU: work queues
  /// behind whatever the agent is already processing.
  void process_for(double cost, std::function<void()> fn);
  /// Accounts CPU without a continuation (cheap bookkeeping like
  /// unmarshalling one reply).
  void charge_cpu(double cost);

  Kind kind_;
  std::string name_;
  std::unique_ptr<sched::Policy> policy_;
  AgentTuning tuning_;
  Rng rng_;

  net::Endpoint parent_ = net::kNullEndpoint;
  std::vector<Child> children_;
  std::set<std::string> services_;
  /// Which SEDs below this agent hold which persistent data ids.
  dtm::ReplicaCatalog catalog_;

  std::uint64_t next_key_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
  double cpu_busy_until_ = 0.0;

  // MA bookkeeping (Section 2.1's per-request state).
  std::unordered_map<std::uint64_t, double> outstanding_;
  std::unordered_map<std::uint64_t, std::uint64_t> assigned_total_;
  std::uint64_t requests_handled_ = 0;

  /// MA: submit keys already expanded, so a duplicated kRequestSubmit
  /// does not fan out (and skew the assignment bookkeeping) twice.
  std::set<std::pair<net::Endpoint, std::uint64_t>> seen_submits_;
  std::uint64_t heartbeat_evictions_ = 0;
  std::uint64_t heartbeat_seq_ = 0;
  std::uint64_t epoch_ = 0;  ///< bumped by fail()/shutdown(); kills loops
  bool failed_ = false;
};

}  // namespace gc::diet
