#include "des/resource.hpp"

#include <utility>

namespace gc::des {

void Resource::acquire(EventFn on_grant) {
  if (in_use_ < capacity_) {
    ++in_use_;
    engine_.schedule_after(0.0, std::move(on_grant));
  } else {
    waiters_.push_back(std::move(on_grant));
  }
}

void Resource::release() {
  GC_CHECK_MSG(in_use_ > 0, "release without acquire");
  if (!waiters_.empty()) {
    EventFn next = std::move(waiters_.front());
    waiters_.pop_front();
    engine_.schedule_after(0.0, std::move(next));
  } else {
    --in_use_;
  }
}

}  // namespace gc::des
