// Network link model for the DES.
//
// Two fidelity levels:
//  - kDelayOnly: transfer time = latency + bytes/bandwidth, transfers do
//    not interact. This is the model used for the paper reproduction (the
//    experiment's transfers are small against RENATER's 1-10 Gb/s).
//  - kSerialized: the link is a FIFO resource; concurrent transfers queue.
//    Used by the ablation benches to show when contention starts to matter.
#pragma once

// gclint: allow-file(net-cost) — this IS a cost model (the standalone DES
// link primitive), not a consumer bypassing Env::estimate_transfer_s.

#include <cstdint>
#include <functional>

#include "des/engine.hpp"
#include "des/resource.hpp"

namespace gc::des {

enum class LinkMode { kDelayOnly, kSerialized };

class Link {
 public:
  /// latency in seconds, bandwidth in bytes/second.
  Link(Engine& engine, double latency_s, double bandwidth_bps,
       LinkMode mode = LinkMode::kDelayOnly)
      : engine_(engine),
        latency_(latency_s),
        bandwidth_(bandwidth_bps),
        mode_(mode),
        channel_(engine, 1) {}

  /// Delivers on_arrival after the modeled transfer time for `bytes`.
  void transfer(std::int64_t bytes, EventFn on_arrival);

  /// Pure model query (no event scheduled).
  [[nodiscard]] double transfer_time(std::int64_t bytes) const {
    return latency_ + static_cast<double>(bytes) / bandwidth_;
  }

  [[nodiscard]] double latency() const { return latency_; }
  [[nodiscard]] double bandwidth() const { return bandwidth_; }
  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  [[nodiscard]] std::int64_t bytes_carried() const { return bytes_carried_; }

 private:
  Engine& engine_;
  double latency_;
  double bandwidth_;
  LinkMode mode_;
  Resource channel_;
  std::uint64_t transfers_ = 0;
  std::int64_t bytes_carried_ = 0;
};

}  // namespace gc::des
