// Discrete-event simulation kernel.
//
// The Grid'5000-scale experiments of the paper run for ~16 simulated hours;
// they are executed here as a discrete-event simulation: every agent, SED
// and client is an event-driven actor, and this engine owns the virtual
// clock and the event calendar. Determinism: events at equal timestamps
// fire in insertion order (monotonic sequence number tiebreak), so a given
// seed replays exactly.
//
// set_tie_break_seed() scrambles that same-timestamp order with a seeded
// bijection. Simulation *outcomes* must not depend on it: any two events
// that share a timestamp are logically concurrent, and code that needs an
// order (per-link FIFO, client submission order) must enforce one
// explicitly. tests/test_schedule_fuzz.cpp replays whole campaigns under
// many seeds and asserts byte-identical results.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "check/invariant.hpp"
#include "common/log.hpp"
#include "common/units.hpp"

namespace gc::des {

using EventFn = std::function<void()>;

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class Engine {
 public:
  /// While it lives, the engine's virtual clock is the logger's time
  /// source, so log lines during a simulation carry sim time.
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules fn at absolute simulated time t (>= now).
  EventId schedule_at(SimTime t, EventFn fn);

  /// Schedules fn after a delay (>= 0) from now.
  EventId schedule_after(SimTime delay, EventFn fn) {
    GC_CHECK_MSG(delay >= 0.0, "negative delay");
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event; returns false if it already fired or is
  /// unknown.
  bool cancel(EventId id);

  /// Executes the next event; returns false when the calendar is empty.
  bool step();

  /// Runs until the calendar drains.
  void run();

  /// Runs while the next event's timestamp is <= t_end; the clock ends at
  /// min(t_end, drain time).
  void run_until(SimTime t_end);

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t events_pending() const { return handlers_.size(); }

  /// Schedule-fuzzing hook: seed != 0 replaces the insertion-order
  /// tie-break among equal-timestamp events with a seeded bijective
  /// scramble of the event ids. 0 restores insertion order. Only affects
  /// events scheduled after the call.
  void set_tie_break_seed(std::uint64_t seed) { tie_seed_ = seed; }
  [[nodiscard]] std::uint64_t tie_break_seed() const { return tie_seed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t tie;  ///< equal-timestamp order: id, or a seeded scramble
    EventId id;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.id > b.id;
    }
  };

  [[nodiscard]] std::uint64_t tie_of(EventId id) const;

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t tie_seed_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_map<EventId, EventFn> handlers_;
};

}  // namespace gc::des
