// Discrete-event simulation kernel.
//
// The Grid'5000-scale experiments of the paper run for ~16 simulated hours;
// they are executed here as a discrete-event simulation: every agent, SED
// and client is an event-driven actor, and this engine owns the virtual
// clock and the event calendar. Determinism: events at equal timestamps
// fire in insertion order (monotonic sequence number tiebreak), so a given
// seed replays exactly.
//
// set_tie_break_seed() scrambles that same-timestamp order with a seeded
// bijection. Simulation *outcomes* must not depend on it: any two events
// that share a timestamp are logically concurrent, and code that needs an
// order (per-link FIFO, client submission order) must enforce one
// explicitly. tests/test_schedule_fuzz.cpp replays whole campaigns under
// many seeds and asserts byte-identical results.
//
// Performance (see DESIGN.md, "DES kernel performance"): the calendar is a
// 4-ary min-heap of 32-byte entries over a slab-allocated event-record
// pool. Handlers are stored in the slab as EventFn — a small-buffer
// callable, so typical lambdas never touch the allocator — and cancellation
// is O(1) and generation-checked: it disarms the record in place without
// searching the heap. Cancelled entries left in the heap (tombstones) are
// compacted away once they outnumber half the calendar, so cancel-heavy
// users (heartbeat/retry timers) cannot grow the heap without bound. The
// pop order is the total order (time, tie, seq) — identical, under every
// tie-break seed, to the pre-optimization reference implementation kept in
// des/reference.hpp; tests/test_des_property.cpp proves it differentially.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/invariant.hpp"
#include "common/log.hpp"
#include "common/units.hpp"

namespace gc::des {

/// Move-only callable of signature void() with a small-buffer optimization
/// sized so every handler the middleware schedules on its message path
/// (including SimEnv's delivery lambda, which carries a whole Envelope)
/// stays inline. Larger callables fall back to one heap allocation, like
/// std::function.
class EventFn {
 public:
  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                std::is_invocable_v<std::remove_cvref_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at every schedule_* call site
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
      relocate_ = [](void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      };
      destroy_ = [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); };
    } else {
      Fn* heap = new Fn(std::forward<F>(f));
      std::memcpy(storage_, &heap, sizeof heap);
      invoke_ = [](void* p) {
        Fn* fn;
        std::memcpy(&fn, p, sizeof fn);
        (*fn)();
      };
      relocate_ = [](void* dst, void* src) {
        std::memcpy(dst, src, sizeof(Fn*));  // ownership moves with the ptr
      };
      destroy_ = [](void* p) {
        Fn* fn;
        std::memcpy(&fn, p, sizeof fn);
        delete fn;
      };
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  /// Destroys the held callable (releasing its captures) immediately.
  void reset() noexcept {
    if (destroy_ != nullptr) destroy_(storage_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  void operator()() { invoke_(storage_); }

 private:
  /// Sized for SimEnv's per-message delivery lambda in GC_CHECK builds
  /// (captured Envelope + stream bookkeeping = 88 bytes since the
  /// envelope gained its out-of-band flag).
  static constexpr std::size_t kInlineBytes = 88;

  void move_from(EventFn& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    if (relocate_ != nullptr) relocate_(storage_, other.storage_);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  void (*invoke_)(void*) = nullptr;
  /// Move-constructs the payload into dst and destroys the src payload.
  void (*relocate_)(void* dst, void* src) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

/// Handle for cancelling a scheduled event: (generation << 32) | slot into
/// the engine's record pool. Generations start at 1, so 0 is never issued
/// — callers use 0 as "no timer".
using EventId = std::uint64_t;

/// Coarse classification of calendar events for engine introspection: who
/// is the calendar working for? Tags are assigned at the schedule_* call
/// site (SimEnv tags its delivery/execute/timer events; everything else
/// defaults to kGeneric) and attributed at pop time. Counting is always on
/// — three array increments per event — while *publishing* the numbers as
/// metrics gauges is gated on metrics_on().
enum class EventTag : std::uint8_t {
  kGeneric = 0,  ///< untagged schedule_* calls
  kTimer,        ///< Env::post_after timers (heartbeats, retries, ticks)
  kMessage,      ///< modeled message delivery (SimEnv::send)
  kExecute,      ///< modeled computation completion (SimEnv::execute)
  kSampler,      ///< observability sampling ticks (obs::TimeSeries)
  kCount,        ///< number of tags, not a tag
};

inline constexpr std::size_t kEventTagCount =
    static_cast<std::size_t>(EventTag::kCount);

/// Stable lowercase name for metric labels and reports.
const char* event_tag_name(EventTag tag);

/// Owner of an event: the actor endpoint whose private state the handler
/// mutates. 0 is the "root context" (scenario setup code, handlers that
/// touch shared/global state) and is conservatively treated as dependent
/// with everything by the model checker. Events scheduled from inside a
/// handler inherit the running event's owner unless the call site says
/// otherwise (SimEnv deliveries are owned by the destination endpoint).
inline constexpr std::uint32_t kInheritOwner = 0xffffffffu;

/// One schedulable alternative at a controlled decision point: an armed
/// calendar entry at the minimal pending timestamp. Choices are presented
/// in native pop order — index 0 is what an uncontrolled step() would run.
struct Choice {
  std::uint64_t cid;   ///< causal id, stable across interleavings
  std::uint64_t seq;   ///< insertion order (debugging / trace dumps)
  SimTime time;        ///< the shared timestamp of the tie group
  std::uint32_t slot;  ///< calendar slot (engine-internal)
  std::uint32_t owner; ///< see kInheritOwner doc; 0 = root context
  EventTag tag;
};

/// External schedule strategy: consulted on EVERY controlled step with the
/// full tie group of co-enabled events; returns the index to execute, or
/// kAbortRun to stop the run (step() then returns false with the calendar
/// intact). The model checker in src/mc is the real client; a strategy
/// that always returns 0 replays the native (tie-seed) order exactly.
class Strategy {
 public:
  static constexpr std::size_t kAbortRun = static_cast<std::size_t>(-1);
  virtual ~Strategy() = default;
  virtual std::size_t pick(const std::vector<Choice>& choices) = 0;
};

class Engine {
 public:
  /// While it lives, the engine's virtual clock is the logger's time
  /// source, so log lines during a simulation carry sim time.
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules fn at absolute simulated time t (>= now). `owner` defaults
  /// to inheriting the currently executing event's owner (root context 0
  /// outside any handler); pass an explicit endpoint to re-root ownership
  /// (SimEnv does this for message deliveries).
  EventId schedule_at(SimTime t, EventFn fn, EventTag tag = EventTag::kGeneric,
                      std::uint32_t owner = kInheritOwner);

  /// Schedules fn after a delay (>= 0) from now.
  EventId schedule_after(SimTime delay, EventFn fn,
                         EventTag tag = EventTag::kGeneric,
                         std::uint32_t owner = kInheritOwner) {
    GC_CHECK_MSG(delay >= 0.0, "negative delay");
    return schedule_at(now_ + delay, std::move(fn), tag, owner);
  }

  /// Cancels a pending event in O(1); returns false if it already fired,
  /// was already cancelled, or is unknown. The handler (and its captures)
  /// is released immediately; the calendar entry becomes a tombstone that
  /// compaction or a later pop reclaims.
  bool cancel(EventId id);

  /// Executes the next event; returns false when the calendar is empty.
  bool step();

  /// Runs until the calendar drains.
  void run();

  /// Runs while the next event's timestamp is <= t_end; the clock ends at
  /// min(t_end, drain time).
  void run_until(SimTime t_end);

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t events_pending() const { return live_; }
  /// Cancelled events still occupying calendar entries. Bounded by the
  /// compaction threshold: never more than half the calendar (plus the
  /// sub-threshold constant), regardless of cancellation rate.
  [[nodiscard]] std::size_t events_tombstoned() const { return tombstones_; }
  /// Peak calendar size (live + tombstones) over the engine's lifetime —
  /// what the des_queue_depth gauge reports when metrics are on.
  [[nodiscard]] std::size_t queue_depth_highwater() const {
    return depth_highwater_;
  }

  // Per-tag introspection. Deterministic by construction: counts and
  // virtual-time deltas only — never wall time — so the numbers (and any
  // export containing them) are byte-identical run to run.
  [[nodiscard]] std::uint64_t events_scheduled_by_tag(EventTag tag) const {
    return tag_scheduled_[static_cast<std::size_t>(tag)];
  }
  [[nodiscard]] std::uint64_t events_executed_by_tag(EventTag tag) const {
    return tag_executed_[static_cast<std::size_t>(tag)];
  }
  /// Total virtual time the clock advanced *into* events of this tag: for
  /// each executed event, (its timestamp - previous clock). Sums over all
  /// tags to now() for a run started at 0 — a decomposition of simulated
  /// time by what kind of event the calendar was waiting on.
  [[nodiscard]] double time_advanced_by_tag(EventTag tag) const {
    return tag_time_[static_cast<std::size_t>(tag)];
  }

  /// Publishes the per-tag counts and time attribution as metrics gauges
  /// (des_events_executed_by_tag{tag=...} etc). No-op when metrics are
  /// off. Call whenever a snapshot is about to be taken — the time-series
  /// sampler does this each tick.
  void publish_tag_metrics() const;

  /// Schedule-fuzzing hook: seed != 0 replaces the insertion-order
  /// tie-break among equal-timestamp events with a seeded bijective
  /// scramble of the event sequence numbers. 0 restores insertion order.
  /// Only affects events scheduled after the call.
  void set_tie_break_seed(std::uint64_t seed) { tie_seed_ = seed; }
  [[nodiscard]] std::uint64_t tie_break_seed() const { return tie_seed_; }

  /// Controlled-scheduler seam: while a strategy is installed, every
  /// step() gathers the armed events at the minimal pending timestamp (the
  /// co-enabled tie group) and executes the one the strategy picks. With
  /// nullptr (the default) the native pop path runs, byte-identical to the
  /// pre-seam engine. The strategy must outlive its installation.
  void set_strategy(Strategy* strategy) { strategy_ = strategy; }
  [[nodiscard]] Strategy* strategy() const { return strategy_; }

  /// Causal id of the currently executing event (0 outside any handler).
  [[nodiscard]] std::uint64_t current_cid() const { return current_cid_; }
  /// Owner of the currently executing event (0 outside any handler).
  [[nodiscard]] std::uint32_t current_owner() const { return current_owner_; }

  /// Soundness tripwire for the model checker's independence relation:
  /// number of cancels issued from inside a handler against an event a
  /// *different* owner scheduled. Such a cancel couples two owners the
  /// relation assumes commute; mc asserts this stays 0 over a run.
  [[nodiscard]] std::uint64_t cross_owner_cancels() const {
    return cross_owner_cancels_;
  }

 private:
  /// One calendar entry; 32 bytes so heap sifts move cache-friendly PODs
  /// while the handler stays put in the slab.
  struct HeapEntry {
    SimTime time;
    std::uint64_t tie;  ///< equal-timestamp order: seq, or a seeded scramble
    std::uint64_t seq;  ///< insertion order; final tie key across seed epochs
    std::uint32_t slot;
  };

  /// Slab record: the handler plus the liveness/generation state that
  /// makes cancellation O(1). A record is addressed by exactly one heap
  /// entry from schedule to pop/compaction; `armed` false marks a
  /// tombstone, and the generation (high half of the EventId) invalidates
  /// stale handles once the slot is recycled.
  struct Record {
    EventFn fn;
    std::uint64_t cid = 0;   ///< causal id: mix(parent cid, child index)
    std::uint32_t generation = 1;
    std::uint32_t owner = 0; ///< owning endpoint; 0 = root context
    EventTag tag = EventTag::kGeneric;
    bool armed = false;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.tie != b.tie) return a.tie < b.tie;
    return a.seq < b.seq;
  }

  [[nodiscard]] std::uint64_t tie_of(std::uint64_t seq) const;

  void heap_push(const HeapEntry& entry);
  /// Removes the root (heap_[0]).
  void heap_pop();
  void sift_down(std::size_t i);
  void sift_up(std::size_t i);
  /// Removes the entry at an arbitrary heap index, restoring heap order.
  void heap_remove_at(std::size_t i);
  /// Native pop-the-root step (the pre-seam fast path).
  bool step_native();
  /// Strategy-driven step: collect the minimal-time tie group, let the
  /// installed strategy pick (or abort), execute the chosen entry.
  bool step_controlled();
  /// Runs one popped record's handler with owner/cid context tracked.
  void dispatch(const HeapEntry& top);
  /// Drops every tombstone from the heap, frees their slots, re-heapifies.
  void compact();
  void free_slot(std::uint32_t slot);
  /// Pops + frees the root, which must be a tombstone.
  void drop_tombstone_root();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t tie_seed_ = 0;
  std::uint64_t executed_ = 0;
  Strategy* strategy_ = nullptr;
  bool in_event_ = false;
  std::uint32_t current_owner_ = 0;
  std::uint64_t current_cid_ = 0;
  std::uint64_t current_children_ = 0;  ///< events scheduled by the running handler
  std::uint64_t root_children_ = 0;     ///< events scheduled outside any handler
  std::uint64_t cross_owner_cancels_ = 0;
  std::vector<Choice> choice_scratch_;  ///< reused by step_controlled
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
  std::size_t depth_highwater_ = 0;
  std::uint64_t tag_scheduled_[kEventTagCount] = {};
  std::uint64_t tag_executed_[kEventTagCount] = {};
  double tag_time_[kEventTagCount] = {};
  std::vector<HeapEntry> heap_;
  std::vector<Record> slab_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace gc::des
