// Naive reference DES engine: the pre-optimization implementation
// (std::priority_queue of (time, tie, id) + a parallel
// std::unordered_map<EventId, std::function> handler table), kept
// header-only as a differential-testing oracle and as the live "before"
// lane of bench_des.
//
// The optimized engine (des/engine.hpp) must pop events in EXACTLY this
// order under every tie-break seed — tests/test_des_property.cpp replays
// randomized schedule/cancel/run_until programs against both and asserts
// identical pop order, clocks, and counters. Do not "improve" this file:
// its value is being the old semantics, frozen.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace gc::des {

class ReferenceEngine {
 public:
  using Fn = std::function<void()>;
  using Id = std::uint64_t;

  [[nodiscard]] SimTime now() const { return now_; }

  Id schedule_at(SimTime t, Fn fn) {
    const Id id = next_id_++;
    queue_.push(Event{t, tie_of(id), id});
    handlers_.emplace(id, std::move(fn));
    return id;
  }

  Id schedule_after(SimTime delay, Fn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  bool cancel(Id id) { return handlers_.erase(id) > 0; }

  bool step() {
    while (!queue_.empty()) {
      const Event ev = queue_.top();
      queue_.pop();
      auto it = handlers_.find(ev.id);
      if (it == handlers_.end()) continue;  // cancelled: tombstone in queue
      Fn fn = std::move(it->second);
      handlers_.erase(it);
      now_ = ev.time;
      ++executed_;
      fn();
      return true;
    }
    return false;
  }

  void run() {
    while (step()) {
    }
  }

  void run_until(SimTime t_end) {
    while (!queue_.empty()) {
      const Event ev = queue_.top();
      if (handlers_.find(ev.id) == handlers_.end()) {
        queue_.pop();
        continue;
      }
      if (ev.time > t_end) break;
      step();
    }
    if (now_ < t_end) now_ = t_end;
  }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t events_pending() const { return handlers_.size(); }

  void set_tie_break_seed(std::uint64_t seed) { tie_seed_ = seed; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t tie;
    Id id;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.id > b.id;
    }
  };

  [[nodiscard]] std::uint64_t tie_of(Id id) const {
    if (tie_seed_ == 0) return id;
    std::uint64_t z = id + tie_seed_ * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  SimTime now_ = 0.0;
  Id next_id_ = 1;
  std::uint64_t tie_seed_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_map<Id, Fn> handlers_;
};

}  // namespace gc::des
