#include "des/link.hpp"

#include <utility>

namespace gc::des {

void Link::transfer(std::int64_t bytes, EventFn on_arrival) {
  ++transfers_;
  bytes_carried_ += bytes;
  const double service = static_cast<double>(bytes) / bandwidth_;
  if (mode_ == LinkMode::kDelayOnly) {
    engine_.schedule_after(latency_ + service, std::move(on_arrival));
    return;
  }
  // Serialized: occupy the channel for the service time; latency is
  // propagation and does not hold the channel.
  channel_.acquire([this, service, cb = std::move(on_arrival)]() mutable {
    engine_.schedule_after(service, [this, cb = std::move(cb)]() mutable {
      channel_.release();
      engine_.schedule_after(latency_, std::move(cb));
    });
  });
}

}  // namespace gc::des
