// FIFO resource for the DES: a server pool with fixed capacity.
//
// Used to model exclusive compute slots (a SED "cannot compute more than
// one simulation at the same time" — capacity 1) and, in tests, generic
// queueing behaviour.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>

#include "des/engine.hpp"

namespace gc::des {

class Resource {
 public:
  /// capacity = number of simultaneous holders.
  Resource(Engine& engine, std::size_t capacity)
      : engine_(engine), capacity_(capacity) {}

  /// Requests one slot; on_grant runs (as a fresh event, never inline)
  /// once the slot is available. FIFO order.
  void acquire(EventFn on_grant);

  /// Returns one slot; the next waiter (if any) is granted.
  void release();

  [[nodiscard]] std::size_t in_use() const { return in_use_; }
  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  Engine& engine_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::deque<EventFn> waiters_;
};

}  // namespace gc::des
