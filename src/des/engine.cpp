#include "des/engine.hpp"

#include <utility>

namespace gc::des {

EventId Engine::schedule_at(SimTime t, EventFn fn) {
  GC_CHECK_MSG(t >= now_, "event scheduled in the past");
  const EventId id = next_id_++;
  queue_.push(Event{t, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

bool Engine::cancel(EventId id) { return handlers_.erase(id) > 0; }

bool Engine::step() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    auto it = handlers_.find(ev.id);
    if (it == handlers_.end()) continue;  // cancelled: tombstone in queue
    EventFn fn = std::move(it->second);
    handlers_.erase(it);
    now_ = ev.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(SimTime t_end) {
  while (!queue_.empty()) {
    // Skip tombstones so we do not advance the clock for cancelled events.
    const Event ev = queue_.top();
    if (handlers_.find(ev.id) == handlers_.end()) {
      queue_.pop();
      continue;
    }
    if (ev.time > t_end) break;
    step();
  }
  if (now_ < t_end) now_ = t_end;
}

}  // namespace gc::des
