#include "des/engine.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gc::des {

namespace {

double engine_clock(const void* ctx) {
  return static_cast<const Engine*>(ctx)->now();
}

/// Compaction trigger: tombstones may occupy at most half the calendar
/// (and small calendars are never worth rebuilding).
constexpr std::size_t kCompactMinEntries = 64;

/// Causal event id: a splitmix64-style mix of the parent event's cid and
/// the child's index among its parent's scheduled events. A handler's
/// behavior depends only on its own actor's state, so the children of an
/// event keep the same cids no matter how unrelated events interleave
/// around it — which is what lets the model checker name "the same event"
/// across different explored schedules.
std::uint64_t mix_cid(std::uint64_t parent, std::uint64_t child) {
  std::uint64_t z = parent + child * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* event_tag_name(EventTag tag) {
  switch (tag) {
    case EventTag::kGeneric:
      return "generic";
    case EventTag::kTimer:
      return "timer";
    case EventTag::kMessage:
      return "message";
    case EventTag::kExecute:
      return "execute";
    case EventTag::kSampler:
      return "sampler";
    case EventTag::kCount:
      break;
  }
  return "unknown";
}

Engine::Engine() { set_log_clock(&engine_clock, this); }

Engine::~Engine() { clear_log_clock(this); }

std::uint64_t Engine::tie_of(std::uint64_t seq) const {
  if (tie_seed_ == 0) return seq;
  // splitmix64 finalizer: a bijection over u64, so distinct sequence
  // numbers keep distinct tie keys and the scramble is a pure permutation
  // of the insertion order among equal timestamps.
  std::uint64_t z = seq + tie_seed_ * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void Engine::heap_push(const HeapEntry& entry) {
  std::size_t i = heap_.size();
  heap_.push_back(entry);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Engine::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry moving = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], moving)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moving;
}

void Engine::heap_pop() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Engine::sift_up(std::size_t i) {
  const HeapEntry moving = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(moving, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = moving;
}

void Engine::heap_remove_at(std::size_t i) {
  heap_[i] = heap_.back();
  heap_.pop_back();
  if (i < heap_.size()) {
    // The filler came from a leaf: it may be out of order in either
    // direction relative to its new neighborhood, but only one applies.
    if (i > 0 && earlier(heap_[i], heap_[(i - 1) / 4])) {
      sift_up(i);
    } else {
      sift_down(i);
    }
  }
}

void Engine::free_slot(std::uint32_t slot) {
  ++slab_[slot].generation;
  free_slots_.push_back(slot);
}

void Engine::drop_tombstone_root() {
  const std::uint32_t slot = heap_[0].slot;
  heap_pop();
  --tombstones_;
  free_slot(slot);
}

void Engine::compact() {
  std::size_t keep = 0;
  for (const HeapEntry& entry : heap_) {
    if (slab_[entry.slot].armed) {
      heap_[keep++] = entry;
    } else {
      free_slot(entry.slot);
    }
  }
  heap_.resize(keep);
  if (keep > 1) {
    // Floyd heapify over the 4-ary layout: sift down every internal node.
    for (std::size_t i = (keep - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }
  tombstones_ = 0;
}

EventId Engine::schedule_at(SimTime t, EventFn fn, EventTag tag,
                            std::uint32_t owner) {
  // Routed through the invariant layer when it is compiled in (so tests
  // can seed the violation); still a hard check in GC_CHECK=OFF builds.
  GC_INVARIANT(t >= now_, "event scheduled in the past");
  GC_CHECK_MSG(t >= now_ || check::kEnabled, "event scheduled in the past");
  if (obs::metrics_on()) {
    // Cached across calls; Metrics::reset() zeroes but never invalidates.
    static obs::Counter& scheduled =
        obs::Metrics::instance().counter("des_events_scheduled_total");
    scheduled.inc();
  }
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  Record& record = slab_[slot];
  record.fn = std::move(fn);
  record.tag = tag;
  record.owner = owner == kInheritOwner ? current_owner_ : owner;
  record.cid = in_event_ ? mix_cid(current_cid_, ++current_children_)
                         : mix_cid(0, ++root_children_);
  record.armed = true;
  ++tag_scheduled_[static_cast<std::size_t>(tag)];
  heap_push(HeapEntry{t, tie_of(seq), seq, slot});
  ++live_;
  if (heap_.size() > depth_highwater_) {
    depth_highwater_ = heap_.size();
    if (obs::metrics_on()) {
      static obs::Gauge& depth =
          obs::Metrics::instance().gauge("des_queue_depth");
      depth.set(static_cast<double>(depth_highwater_));
    }
  }
  return (static_cast<EventId>(record.generation) << 32) | slot;
}

bool Engine::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffULL);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slab_.size()) return false;
  Record& record = slab_[slot];
  if (!record.armed || record.generation != generation) return false;
  // Independence tripwire for the model checker: a handler reaching into
  // another owner's pending event couples the two owners.
  if (in_event_ && record.owner != current_owner_) ++cross_owner_cancels_;
  record.armed = false;
  record.fn.reset();  // release captures now, not at pop time
  --live_;
  ++tombstones_;
  if (obs::metrics_on()) {
    static obs::Counter& cancelled =
        obs::Metrics::instance().counter("des_events_cancelled_total");
    cancelled.inc();
  }
  if (heap_.size() >= kCompactMinEntries && tombstones_ * 2 > heap_.size()) {
    compact();
  }
  return true;
}

void Engine::publish_tag_metrics() const {
  if (!obs::metrics_on()) return;
  obs::Metrics& metrics = obs::Metrics::instance();
  for (std::size_t i = 0; i < kEventTagCount; ++i) {
    const auto tag = static_cast<EventTag>(i);
    const obs::Labels labels = {{"tag", event_tag_name(tag)}};
    metrics.gauge("des_events_scheduled_by_tag", labels)
        .set(static_cast<double>(tag_scheduled_[i]));
    metrics.gauge("des_events_executed_by_tag", labels)
        .set(static_cast<double>(tag_executed_[i]));
    metrics.gauge("des_time_advanced_seconds_by_tag", labels)
        .set(tag_time_[i]);
  }
}

bool Engine::step() {
  return strategy_ != nullptr ? step_controlled() : step_native();
}

void Engine::dispatch(const HeapEntry& top) {
  Record& record = slab_[top.slot];
  GC_INVARIANT(top.time >= now_, "virtual clock would move backwards");
  EventFn fn = std::move(record.fn);
  const auto tag_index = static_cast<std::size_t>(record.tag);
  const std::uint64_t cid = record.cid;
  const std::uint32_t owner = record.owner;
  record.armed = false;
  free_slot(top.slot);  // fn() may reuse the slot; record is dead from here
  --live_;
  ++tag_executed_[tag_index];
  tag_time_[tag_index] += top.time - now_;
  now_ = top.time;
  ++executed_;
  if (obs::metrics_on()) {
    static obs::Counter& executed =
        obs::Metrics::instance().counter("des_events_executed_total");
    executed.inc();
  }
  in_event_ = true;
  current_owner_ = owner;
  current_cid_ = cid;
  current_children_ = 0;
  fn();
  in_event_ = false;
  current_owner_ = 0;
  current_cid_ = 0;
}

bool Engine::step_native() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    if (!slab_[top.slot].armed) {
      drop_tombstone_root();
      continue;
    }
    heap_pop();
    dispatch(top);
    return true;
  }
  return false;
}

bool Engine::step_controlled() {
  // Reclaim tombstone roots so heap_[0] is the true minimal armed time.
  while (!heap_.empty() && !slab_[heap_[0].slot].armed) drop_tombstone_root();
  if (heap_.empty()) return false;
  const SimTime next_time = heap_[0].time;
  // The co-enabled tie group: every armed entry at the minimal timestamp.
  // A linear scan of the calendar — the checker's scenarios keep it small,
  // and the native path never comes through here.
  std::vector<HeapEntry> group;
  for (const HeapEntry& entry : heap_) {
    if (entry.time == next_time && slab_[entry.slot].armed) {
      group.push_back(entry);
    }
  }
  // Present in native pop order: index 0 is what step_native would run.
  std::sort(group.begin(), group.end(), earlier);
  choice_scratch_.clear();
  for (const HeapEntry& entry : group) {
    const Record& record = slab_[entry.slot];
    choice_scratch_.push_back(Choice{record.cid, entry.seq, entry.time,
                                     entry.slot, record.owner, record.tag});
  }
  const std::size_t picked = strategy_->pick(choice_scratch_);
  if (picked == Strategy::kAbortRun) return false;
  GC_CHECK_MSG(picked < choice_scratch_.size(), "strategy pick out of range");
  const std::uint32_t slot = choice_scratch_[picked].slot;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (heap_[i].slot != slot) continue;
    const HeapEntry top = heap_[i];
    heap_remove_at(i);
    dispatch(top);
    return true;
  }
  GC_CHECK_MSG(false, "picked choice vanished from the calendar");
  return false;
}

void Engine::run() {
  const SimTime start = now_;
  const std::uint64_t executed_before = executed_;
  while (step()) {
  }
  if (obs::tracing() && executed_ > executed_before) {
    obs::SpanId span =
        obs::Tracer::instance().begin_span(start, "des.run", "des");
    obs::Tracer::instance().span_arg(
        span, "events", std::to_string(executed_ - executed_before));
    obs::Tracer::instance().end_span(span, now_);
  }
}

void Engine::run_until(SimTime t_end) {
  const SimTime start = now_;
  const std::uint64_t executed_before = executed_;
  while (!heap_.empty()) {
    // Reclaim cancelled heads eagerly so they never advance the clock and
    // are never re-scanned on the next iteration.
    if (!slab_[heap_[0].slot].armed) {
      drop_tombstone_root();
      continue;
    }
    if (heap_[0].time > t_end) break;
    if (!step()) break;  // only a strategy abort stops a non-empty calendar
  }
  if (now_ < t_end) now_ = t_end;
  if (obs::tracing() && executed_ > executed_before) {
    obs::SpanId span =
        obs::Tracer::instance().begin_span(start, "des.run_until", "des");
    obs::Tracer::instance().span_arg(
        span, "events", std::to_string(executed_ - executed_before));
    obs::Tracer::instance().end_span(span, now_);
  }
}

}  // namespace gc::des
