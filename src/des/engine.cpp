#include "des/engine.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gc::des {

namespace {
double engine_clock(const void* ctx) {
  return static_cast<const Engine*>(ctx)->now();
}
}  // namespace

Engine::Engine() { set_log_clock(&engine_clock, this); }

Engine::~Engine() { clear_log_clock(this); }

std::uint64_t Engine::tie_of(EventId id) const {
  if (tie_seed_ == 0) return id;
  // splitmix64 finalizer: a bijection over u64, so distinct ids keep
  // distinct tie keys and the scramble is a pure permutation of the
  // insertion order among equal timestamps.
  std::uint64_t z = id + tie_seed_ * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

EventId Engine::schedule_at(SimTime t, EventFn fn) {
  // Routed through the invariant layer when it is compiled in (so tests
  // can seed the violation); still a hard check in GC_CHECK=OFF builds.
  GC_INVARIANT(t >= now_, "event scheduled in the past");
  GC_CHECK_MSG(t >= now_ || check::kEnabled, "event scheduled in the past");
  if (obs::metrics_on()) {
    // Cached across calls; Metrics::reset() zeroes but never invalidates.
    static obs::Counter& scheduled =
        obs::Metrics::instance().counter("des_events_scheduled_total");
    scheduled.inc();
  }
  const EventId id = next_id_++;
  queue_.push(Event{t, tie_of(id), id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

bool Engine::cancel(EventId id) {
  const bool live = handlers_.erase(id) > 0;
  if (live && obs::metrics_on()) {
    static obs::Counter& cancelled =
        obs::Metrics::instance().counter("des_events_cancelled_total");
    cancelled.inc();
  }
  return live;
}

bool Engine::step() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    auto it = handlers_.find(ev.id);
    if (it == handlers_.end()) continue;  // cancelled: tombstone in queue
    EventFn fn = std::move(it->second);
    handlers_.erase(it);
    GC_INVARIANT(ev.time >= now_, "virtual clock would move backwards");
    now_ = ev.time;
    ++executed_;
    if (obs::metrics_on()) {
      static obs::Counter& executed =
          obs::Metrics::instance().counter("des_events_executed_total");
      executed.inc();
    }
    fn();
    return true;
  }
  return false;
}

void Engine::run() {
  const SimTime start = now_;
  const std::uint64_t executed_before = executed_;
  while (step()) {
  }
  if (obs::tracing() && executed_ > executed_before) {
    obs::SpanId span =
        obs::Tracer::instance().begin_span(start, "des.run", "des");
    obs::Tracer::instance().span_arg(
        span, "events", std::to_string(executed_ - executed_before));
    obs::Tracer::instance().end_span(span, now_);
  }
}

void Engine::run_until(SimTime t_end) {
  const SimTime start = now_;
  const std::uint64_t executed_before = executed_;
  while (!queue_.empty()) {
    // Skip tombstones so we do not advance the clock for cancelled events.
    const Event ev = queue_.top();
    if (handlers_.find(ev.id) == handlers_.end()) {
      queue_.pop();
      continue;
    }
    if (ev.time > t_end) break;
    step();
  }
  if (now_ < t_end) now_ = t_end;
  if (obs::tracing() && executed_ > executed_before) {
    obs::SpanId span =
        obs::Tracer::instance().begin_span(start, "des.run_until", "des");
    obs::Tracer::instance().span_arg(
        span, "events", std::to_string(executed_ - executed_before));
    obs::Tracer::instance().end_span(span, now_);
  }
}

}  // namespace gc::des
