#include "hilbert/hilbert.hpp"

#include "common/log.hpp"

namespace gc::hilbert {

namespace {
constexpr int kDims = 3;

/// Skilling: axes -> transposed Hilbert pattern (in place).
void axes_to_transpose(std::uint32_t* x, int order) {
  const std::uint32_t m = 1u << (order - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < kDims; ++i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < kDims; ++i) x[i] ^= x[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    if (x[kDims - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < kDims; ++i) x[i] ^= t;
}

/// Skilling: transposed Hilbert pattern -> axes (in place).
void transpose_to_axes(std::uint32_t* x, int order) {
  const std::uint32_t n = 2u << (order - 1);
  // Gray decode by H ^ (H/2).
  std::uint32_t t = x[kDims - 1] >> 1;
  for (int i = kDims - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != n; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = kDims - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
}

}  // namespace

std::uint64_t encode(std::uint32_t x, std::uint32_t y, std::uint32_t z,
                     int order) {
  GC_CHECK(order >= 1 && order <= kMaxOrder);
  std::uint32_t axes[kDims] = {x, y, z};
  axes_to_transpose(axes, order);
  // Interleave: bit b of the key triplet comes from (axes[0], axes[1],
  // axes[2]) at bit position b, most significant first.
  std::uint64_t key = 0;
  for (int b = order - 1; b >= 0; --b) {
    for (int i = 0; i < kDims; ++i) {
      key = (key << 1) | ((axes[i] >> b) & 1u);
    }
  }
  return key;
}

void decode(std::uint64_t key, int order, std::uint32_t& x, std::uint32_t& y,
            std::uint32_t& z) {
  GC_CHECK(order >= 1 && order <= kMaxOrder);
  std::uint32_t axes[kDims] = {0, 0, 0};
  for (int b = order - 1; b >= 0; --b) {
    for (int i = 0; i < kDims; ++i) {
      const int shift = b * kDims + (kDims - 1 - i);
      axes[i] |= static_cast<std::uint32_t>((key >> shift) & 1u) << b;
    }
  }
  transpose_to_axes(axes, order);
  x = axes[0];
  y = axes[1];
  z = axes[2];
}

std::vector<std::size_t> partition(const std::vector<double>& weights,
                                   int parts) {
  GC_CHECK(parts >= 1);
  double total = 0.0;
  for (const double w : weights) total += w;

  std::vector<std::size_t> bounds(static_cast<std::size_t>(parts) + 1, 0);
  bounds[static_cast<std::size_t>(parts)] = weights.size();
  double acc = 0.0;
  int part = 1;
  for (std::size_t i = 0; i < weights.size() && part < parts; ++i) {
    acc += weights[i];
    // Close part p once its cumulative share is reached; keeps every part
    // non-empty as long as there are at least `parts` cells.
    const double target = total * part / parts;
    const std::size_t remaining_cells = weights.size() - (i + 1);
    const std::size_t remaining_parts = static_cast<std::size_t>(parts - part);
    if (acc >= target || remaining_cells == remaining_parts) {
      bounds[static_cast<std::size_t>(part)] = i + 1;
      ++part;
    }
  }
  // Any unclosed parts (e.g. zero-weight tail): close them at the end.
  for (; part < parts; ++part) {
    bounds[static_cast<std::size_t>(part)] = weights.size();
  }
  return bounds;
}

std::vector<std::uint64_t> curve_order(int order) {
  const std::size_t n = std::size_t{1} << order;
  std::vector<std::uint64_t> out(n * n * n);
  for (std::uint64_t key = 0; key < out.size(); ++key) {
    std::uint32_t x;
    std::uint32_t y;
    std::uint32_t z;
    decode(key, order, x, y, z);
    out[key] = (static_cast<std::uint64_t>(x) * n + y) * n + z;
  }
  return out;
}

}  // namespace gc::hilbert
