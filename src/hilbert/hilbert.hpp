// 3D Peano-Hilbert curve.
//
// RAMSES decomposes its computational space with "a mesh partitionning
// strategy based on the Peano-Hilbert cell ordering" (Section 3, refs
// [5, 6]): cells are sorted along the space-filling curve and each MPI
// rank takes a contiguous, load-balanced segment. encode/decode implement
// Skilling's transpose algorithm ("Programming the Hilbert curve", 2004).
#pragma once

#include <cstdint>
#include <vector>

namespace gc::hilbert {

/// Maximum bits per axis (3*21 = 63 key bits fits in uint64).
inline constexpr int kMaxOrder = 21;

/// Hilbert key of cell (x, y, z) on a 2^order per-axis grid.
std::uint64_t encode(std::uint32_t x, std::uint32_t y, std::uint32_t z,
                     int order);

/// Inverse of encode.
void decode(std::uint64_t key, int order, std::uint32_t& x, std::uint32_t& y,
            std::uint32_t& z);

/// Splits `weights` (per-cell-in-curve-order) into `parts` contiguous
/// segments with near-equal weight. Returns `parts + 1` boundaries
/// (b[0] = 0, b[parts] = weights.size()); segment p is [b[p], b[p+1]).
std::vector<std::size_t> partition(const std::vector<double>& weights,
                                   int parts);

/// Curve-order traversal of an n^3 grid (n = 2^order): element i of the
/// result is the flat row-major cell index ((x*n)+y)*n+z of curve
/// position i.
std::vector<std::uint64_t> curve_order(int order);

}  // namespace gc::hilbert
