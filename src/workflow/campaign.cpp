#include "workflow/campaign.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "des/engine.hpp"
#include "fault/injector.hpp"
#include "halo/halomaker.hpp"
#include "naming/registry.hpp"
#include "net/simenv.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "ramses/simulation.hpp"

namespace gc::workflow {

namespace {

/// One successful zoom2 call's science: centre, zoom depth, return code.
using ScienceTuple = std::array<std::int64_t, 5>;

/// FNV-1a over the sorted tuples — independent of completion order,
/// scheduling, and which attempt of a retried call finally landed.
std::uint64_t science_digest_of(std::vector<ScienceTuple> tuples) {
  std::sort(tuples.begin(), tuples.end());
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](std::int64_t value) {
    auto u = static_cast<std::uint64_t>(value);
    for (int i = 0; i < 8; ++i) {
      h ^= (u >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  for (const ScienceTuple& tuple : tuples) {
    for (std::int64_t value : tuple) mix(value);
  }
  return h;
}

/// Splits a single-hierarchy spec into `mas` federation shards: LAs (and
/// their SEDs) round-robin, every shard MA on the original MA's node.
/// All shards offer the same services, so the on-miss forwarding default
/// would never leave the local shard — shards run federate_always.
std::vector<diet::DeploymentSpec> split_for_federation(
    const diet::DeploymentSpec& spec, int mas) {
  GC_CHECK_MSG(mas >= 2 && static_cast<std::size_t>(mas) <= spec.las.size(),
               "federation_mas must be in [2, LA count]");
  std::vector<diet::DeploymentSpec> shards(static_cast<std::size_t>(mas));
  for (int s = 0; s < mas; ++s) {
    diet::DeploymentSpec& shard = shards[static_cast<std::size_t>(s)];
    shard.ma_name = "MA" + std::to_string(s + 1);
    shard.ma_node = spec.ma_node;
    shard.policy = spec.policy;
    shard.agent_tuning = spec.agent_tuning;
    shard.agent_tuning.federate_always = true;
    shard.sed_tuning = spec.sed_tuning;
    shard.seed = spec.seed + 1000003ULL * static_cast<std::uint64_t>(s);
  }
  for (std::size_t i = 0; i < spec.las.size(); ++i) {
    diet::DeploymentSpec& shard = shards[i % static_cast<std::size_t>(mas)];
    diet::DeploymentSpec::LaSpec la = spec.las[i];
    std::vector<int> remapped;
    remapped.reserve(la.sed_indexes.size());
    for (const int idx : la.sed_indexes) {
      remapped.push_back(static_cast<int>(shard.seds.size()));
      shard.seds.push_back(spec.seds.at(static_cast<std::size_t>(idx)));
    }
    la.sed_indexes = std::move(remapped);
    shard.las.push_back(std::move(la));
  }
  return shards;
}

/// The classic single hierarchy or an N-shard federation behind one
/// surface, so the campaign body below is identical for both. N=1
/// constructs exactly the pre-federation Deployment (byte-identical runs).
struct CampaignHierarchy {
  std::unique_ptr<diet::Deployment> single;
  std::unique_ptr<diet::Federation> fed;
  std::vector<net::NodeId> sed_nodes;  ///< flat order, for isolate/heal

  [[nodiscard]] diet::Agent& ma() {
    return single ? single->ma() : fed->ma(0);
  }
  [[nodiscard]] std::size_t sed_count() const {
    return single ? single->sed_count() : fed->sed_count();
  }
  [[nodiscard]] diet::Sed& sed(std::size_t i) {
    return single ? single->sed(i) : fed->sed(i);
  }
  [[nodiscard]] std::size_t la_count() const {
    return single ? single->la_count() : fed->la_count();
  }
  [[nodiscard]] diet::Agent& la(std::size_t i) {
    return single ? single->la(i) : fed->la(i);
  }
  /// Watchdog firings across every MA (one in the classic shape).
  [[nodiscard]] std::uint64_t ma_heartbeat_evictions() const {
    if (single) return single->ma().heartbeat_evictions();
    std::uint64_t n = 0;
    for (std::size_t s = 0; s < fed->shard_count(); ++s) {
      n += fed->ma(s).heartbeat_evictions();
    }
    return n;
  }
};

}  // namespace

diet::DeploymentSpec deployment_spec_from_g5k(
    const platform::G5kDeployment& g5k, const CampaignConfig& config) {
  diet::DeploymentSpec spec;
  spec.ma_name = "MA1";
  spec.ma_node = g5k.ma_node;
  spec.policy = config.policy;
  spec.agent_tuning = config.agent_tuning;
  spec.sed_tuning = config.sed_tuning;
  spec.seed = config.seed;

  for (const platform::SedPlacement& sed : g5k.seds) {
    diet::DeploymentSpec::SedSpec s;
    s.name = sed.name;
    s.node = sed.frontal;
    s.host_power = g5k.platform.cluster(sed.cluster).model.relative_power;
    s.machines = sed.machines;
    spec.seds.push_back(std::move(s));
  }
  for (const platform::LaPlacement& la : g5k.las) {
    diet::DeploymentSpec::LaSpec l;
    l.name = la.name;
    l.node = la.node;
    l.sed_indexes = la.sed_indexes;
    spec.las.push_back(std::move(l));
  }
  return spec;
}

CampaignResult run_grid5000_campaign(const CampaignConfig& config) {
  // Chaos runs work on a local copy: the plan's tolerance knobs become
  // the deployment's tunings, so "--fault-plan mixed" is one switch. The
  // fault-free path copies the config untouched and takes the exact
  // pre-fault code path everywhere below.
  fault::FaultPlan plan;
  if (!config.fault_plan.empty()) {
    auto parsed = fault::parse_plan(config.fault_plan);
    GC_CHECK_MSG(parsed.is_ok(),
                 "bad fault plan: " + parsed.status().to_string());
    plan = parsed.value();
  }
  CampaignConfig cfg = config;
  if (plan.active) {
    cfg.sed_tuning.heartbeat_period = plan.heartbeat_period_s;
    cfg.agent_tuning.heartbeat_period = plan.heartbeat_period_s;
    cfg.agent_tuning.heartbeat_timeout = plan.heartbeat_timeout_s;
    // The heartbeat watchdog owns liveness under chaos; strike eviction
    // would erase a child for good over what may be dropped messages.
    cfg.agent_tuning.max_child_timeouts = 0;
    // Campaign-level rescue on top of the client's own attempts: a call
    // that burned its whole attempt budget is resubmitted from scratch.
    if (cfg.max_retries == 0) cfg.max_retries = 3;
  }
  if (cfg.replicas > 1) {
    cfg.sed_tuning.replication_factor = cfg.replicas;
  }
  // WAN-engine knobs reach the SEDs through their tuning; only non-default
  // values are applied so a caller-set sed_tuning.wan survives.
  if (cfg.wan_streams > 1) cfg.sed_tuning.wan.streams = cfg.wan_streams;
  if (cfg.wan_relay) cfg.sed_tuning.wan.relay = true;
  if (cfg.wan_compression > 0.0) {
    cfg.sed_tuning.wan.compression = cfg.wan_compression;
    cfg.sed_tuning.wan.compress_bps = cfg.wan_compress_bps;
  }

  platform::G5kOptions g5k_options;
  g5k_options.wan_bandwidth_scale = cfg.wan_bandwidth_scale;
  g5k_options.wan_per_stream_bps = cfg.wan_per_stream_bps;
  platform::G5kDeployment g5k =
      platform::make_grid5000(cfg.machines_per_sed, g5k_options);

  des::Engine engine;
  engine.set_tie_break_seed(cfg.tie_break_seed);
  net::SimEnv env(engine, g5k.platform);
  if (cfg.contention) env.enable_contention();
  naming::Registry registry;

  std::unique_ptr<fault::Injector> injector;
  if (plan.active) {
    injector = std::make_unique<fault::Injector>(plan, cfg.fault_seed);
    env.set_fault_hook(injector.get());
  }

  ServiceOptions service_options = cfg.services;
  service_options.work_dir += "/campaign_" + std::to_string(cfg.seed);
  diet::ServiceTable services;
  GC_CHECK(register_services(services, service_options).is_ok());

  const diet::DeploymentSpec spec = deployment_spec_from_g5k(g5k, cfg);
  CampaignHierarchy deployment;
  if (cfg.federation_mas > 1) {
    auto shard_specs = split_for_federation(spec, cfg.federation_mas);
    for (const auto& shard : shard_specs) {
      for (const auto& sed : shard.seds) {
        deployment.sed_nodes.push_back(sed.node);
      }
    }
    deployment.fed = std::make_unique<diet::Federation>(
        env, registry, services, std::move(shard_specs));
  } else {
    deployment.single =
        std::make_unique<diet::Deployment>(env, registry, services, spec);
    for (const auto& sed : spec.seds) {
      deployment.sed_nodes.push_back(sed.node);
    }
  }
  if (cfg.policy_factory) {
    deployment.ma().set_policy(cfg.policy_factory());
  }

  diet::Client::Tuning client_tuning;
  if (plan.active) {
    client_tuning.max_attempts = plan.max_attempts;
    client_tuning.attempt_timeout_s = plan.attempt_timeout_s;
    client_tuning.backoff_base_s = plan.backoff_base_s;
    client_tuning.backoff_mult = plan.backoff_mult;
  }
  diet::Client client("client", client_tuning);
  env.attach(client, g5k.client_node);
  auto ma = registry.resolve("MA1");
  GC_CHECK(ma.is_ok());
  client.connect(ma.value());

  // Let registration settle before the campaign starts.
  engine.run_until(engine.now() + 2.0);

  // The namelist the client ships (IN argument 0 of both services).
  std::error_code ec;
  std::filesystem::create_directories(service_options.work_dir, ec);
  const std::string namelist_path = service_options.work_dir + "/zoom.nml";
  {
    ramses::RunParams params;
    params.npart_dim = cfg.resolution;
    params.box_mpc = cfg.size_mpc;
    std::ofstream out(namelist_path);
    out << params.to_namelist();
  }

  CampaignResult result;
  std::size_t completed = 0;
  bool zoom1_done = false;

  // Scheduled fault: kill one SED mid-campaign (bench A4).
  if (cfg.fault_sed_index >= 0) {
    GC_CHECK(static_cast<std::size_t>(cfg.fault_sed_index) <
             deployment.sed_count());
    const double delay = std::max(0.0, cfg.fault_at_s - engine.now());
    env.post_after(delay, [&deployment, &cfg]() {
      GC_WARN << "fault injection: killing "
              << deployment.sed(static_cast<std::size_t>(cfg.fault_sed_index))
                     .name();
      deployment.sed(static_cast<std::size_t>(cfg.fault_sed_index)).fail();
    });
  }

  // The plan's process-fault schedule: crashes, restarts, LA deaths, and
  // link partitions, all at virtual times drawn in materialize().
  if (plan.active) {
    const auto schedule =
        fault::materialize(plan, static_cast<int>(deployment.sed_count()),
                           static_cast<int>(deployment.la_count()),
                           cfg.fault_seed);
    for (const fault::ProcessFault& f : schedule) {
      const double delay = std::max(0.0, f.at_s - engine.now());
      const auto index = static_cast<std::size_t>(f.index);
      switch (f.kind) {
        case fault::ProcessFault::Kind::kSedCrash:
          ++result.sed_crashes;
          env.post_after(delay, [&deployment, index]() {
            GC_WARN << "fault plan: crashing " << deployment.sed(index).name();
            deployment.sed(index).fail();
          });
          break;
        case fault::ProcessFault::Kind::kSedRestart:
          ++result.sed_restarts;
          env.post_after(delay, [&deployment, index]() {
            GC_WARN << "fault plan: restarting "
                    << deployment.sed(index).name();
            deployment.sed(index).restart();
          });
          break;
        case fault::ProcessFault::Kind::kLaDeath:
          ++result.la_deaths;
          env.post_after(delay, [&deployment, index]() {
            GC_WARN << "fault plan: killing " << deployment.la(index).name();
            deployment.la(index).fail();
          });
          break;
        case fault::ProcessFault::Kind::kSedIsolate: {
          ++result.sed_isolations;
          const net::NodeId node = deployment.sed_nodes.at(index);
          env.post_after(delay, [&deployment, &injector, index, node]() {
            GC_WARN << "fault plan: isolating " << deployment.sed(index).name();
            injector->isolate(node);
          });
          break;
        }
        case fault::ProcessFault::Kind::kSedHeal: {
          const net::NodeId node = deployment.sed_nodes.at(index);
          env.post_after(delay, [&deployment, &injector, index, node]() {
            GC_WARN << "fault plan: healing " << deployment.sed(index).name();
            injector->heal(node);
          });
          break;
        }
      }
    }
  }

  // Part 2: issued all at once when part 1 completes; failed calls are
  // resubmitted up to cfg.max_retries times each.
  // Retry closures live on the stack and capture themselves by reference:
  // the engine drains before this scope exits, so no callback can outlive
  // them, and (unlike a shared_ptr captured by its own target) nothing
  // cycles or leaks.
  std::vector<ScienceTuple> science;
  std::function<void(const halo::Halo&, int)> submit_one;
  submit_one = [&](const halo::Halo& halo, int retries_left) {
    const int cx = static_cast<int>(halo.x * cfg.resolution);
    const int cy = static_cast<int>(halo.y * cfg.resolution);
    const int cz = static_cast<int>(halo.z * cfg.resolution);
    diet::Profile profile = make_zoom2_profile(
        namelist_path, cfg.shipped_input_bytes, cfg.resolution,
        cfg.size_mpc, cx, cy, cz, cfg.nb_box, cfg.input_mode);
    client.call_async(
        std::move(profile),
        [&, halo, retries_left, cx, cy, cz](
            const gc::Status& status, diet::Profile& out_profile) {
          if (status.is_ok()) {
            auto rc = out_profile.arg(8).get_scalar<std::int32_t>();
            science.push_back({cx, cy, cz, cfg.nb_box,
                               rc.is_ok() ? rc.value() : -1});
            ++completed;
            return;
          }
          if (retries_left > 0) {
            ++result.resubmissions;
            submit_one(halo, retries_left - 1);
            return;
          }
          ++result.failed_calls;
          ++completed;
        },
        cfg.call_deadline_s);
  };

  auto submit_zoom2 = [&](const std::string& catalog_path) {
    auto catalog = halo::read_catalog(catalog_path);
    std::vector<halo::Halo> halos;
    if (catalog.is_ok()) halos = std::move(catalog.value().halos);
    GC_CHECK_MSG(!halos.empty(), "zoom1 produced no halos");
    for (int i = 0; i < cfg.sub_simulations; ++i) {
      submit_one(halos[static_cast<std::size_t>(i) % halos.size()],
                 cfg.max_retries);
    }
  };

  // Part 1; under a fault plan the whole call is resubmitted when even the
  // client's own attempt budget was not enough (zoom1 is the campaign's
  // single point of failure, so it gets the same rescue as zoom2 calls).
  std::function<void(int)> submit_zoom1;
  submit_zoom1 = [&](int retries_left) {
    diet::Profile zoom1 =
        make_zoom1_profile(namelist_path, cfg.shipped_input_bytes,
                           cfg.resolution, cfg.size_mpc, cfg.input_mode);
    client.call_async(
        std::move(zoom1),
        [&, retries_left](const gc::Status& status,
                          diet::Profile& profile) {
          if (!status.is_ok() && retries_left > 0) {
            ++result.resubmissions;
            submit_zoom1(retries_left - 1);
            return;
          }
          zoom1_done = true;
          GC_CHECK_MSG(status.is_ok(), "zoom1 failed: " + status.to_string());
          auto file = profile.arg(3).get_file();
          GC_CHECK(file.is_ok());
          submit_zoom2(file.value().path);
        });
  };
  submit_zoom1(plan.active ? cfg.max_retries : 0);

  // Time-series sampler: a self-rearming virtual-time tick snapshotting
  // the metrics registry every interval() sim-seconds. It rearms only
  // while *other* work is pending, so the calendar still drains and
  // engine.run() terminates; sampling never perturbs the simulation — it
  // only reads. Lives on the stack (events capture it by reference), so
  // nothing leaks when the plan.active loop exits with a tick pending.
  std::function<void()> sampler_tick;
  if (obs::timeseries_on()) {
    sampler_tick = [&engine, &sampler_tick]() {
      auto& ts = obs::TimeSeries::instance();
      engine.publish_tag_metrics();
      ts.sample(engine.now());
      if (engine.events_pending() > 0) {
        engine.schedule_after(ts.interval(),
                              [&sampler_tick]() { sampler_tick(); },
                              des::EventTag::kSampler);
      }
    };
    engine.publish_tag_metrics();
    obs::TimeSeries::instance().sample(engine.now());  // anchor sample
    engine.schedule_after(obs::TimeSeries::instance().interval(),
                          [&sampler_tick]() { sampler_tick(); },
                          des::EventTag::kSampler);
  }

  if (plan.active) {
    // Heartbeat loops re-arm themselves forever, so the calendar never
    // drains under a plan; step until the campaign itself is done.
    while (engine.step()) {
      if (zoom1_done &&
          completed == static_cast<std::size_t>(cfg.sub_simulations)) {
        break;
      }
    }
  } else {
    engine.run();
  }
  GC_CHECK_MSG(zoom1_done, "zoom1 never completed");
  GC_CHECK_MSG(completed == static_cast<std::size_t>(cfg.sub_simulations),
               "campaign did not finish all sub-simulations");

  // ---- metrics ----
  const auto& records = client.records();
  GC_CHECK(records.size() >=
           1 + static_cast<std::size_t>(cfg.sub_simulations));
  // Split by service (a chaos run may resubmit zoom1, so position 0 is
  // not guaranteed); the last zoom1 attempt is the one that fed part 2.
  result.zoom1 = records[0];
  for (const auto& record : records) {
    if (record.service == "ramsesZoom1") {
      result.zoom1 = record;
    } else {
      result.zoom2.push_back(record);
    }
  }

  result.part1_duration = result.zoom1.total_time();

  RunningStats exec_stats;
  RunningStats finding_stats;
  double first_submit = result.zoom1.submitted;
  double last_completed = result.zoom1.completed;
  double sequential = 0.0;

  for (std::size_t i = 0; i < deployment.sed_count(); ++i) {
    const diet::Sed& sed = deployment.sed(i);
    SedSummary summary;
    summary.name = sed.name();
    const platform::SedPlacement& placement = g5k.seds[i];
    const platform::Cluster& cluster = g5k.platform.cluster(placement.cluster);
    summary.cluster = cluster.name;
    summary.site = g5k.platform.site(cluster.site).name;
    summary.machine_power = cluster.model.relative_power;
    summary.jobs = sed.job_log();
    for (const auto& job : summary.jobs) {
      if (job.service == "ramsesZoom2") {
        summary.requests += 1;
        summary.busy_seconds += job.finished - job.started;
      }
      sequential += job.finished - job.started;
    }
    result.seds.push_back(std::move(summary));
  }

  for (const auto& record : result.zoom2) {
    if (record.found >= 0.0) finding_stats.add(record.finding_time());
    if (record.ok && record.started >= 0.0 && record.completed >= 0.0) {
      exec_stats.add(record.completed - record.started);
    }
    last_completed = std::max(last_completed, record.completed);
    first_submit = std::min(first_submit, record.submitted);
  }
  finding_stats.add(result.zoom1.finding_time());

  result.part2_mean_exec = exec_stats.mean();
  result.makespan = last_completed - first_submit;
  result.sequential_estimate = sequential;
  result.finding_mean = finding_stats.mean();
  // Overhead per the paper: finding time + service initiation, everything
  // else being either payload transfer or computation.
  result.overhead_total =
      finding_stats.sum() +
      cfg.sed_tuning.init_delay *
          static_cast<double>(cfg.sub_simulations + 1);
  result.network_bytes = env.bytes_sent();
  result.network_messages = env.messages_sent();
  if (const net::FlowModel* flow = env.flow_model()) {
    result.flows_completed = flow->flows_completed();
    result.peak_active_flows = flow->peak_active_flows();
  }
  for (const auto& [pair, bytes] : env.bytes_by_node_pair()) {
    if (g5k.platform.node(pair.first).site !=
        g5k.platform.node(pair.second).site) {
      result.wan_bytes += bytes;
    }
  }
  result.science_digest = science_digest_of(std::move(science));

  if (injector) {
    result.messages_dropped = injector->stats().dropped.load();
    result.messages_duplicated = injector->stats().duplicated.load();
    result.messages_delayed = injector->stats().delayed.load();
  }
  result.heartbeat_evictions = deployment.ma_heartbeat_evictions();
  for (std::size_t i = 0; i < deployment.la_count(); ++i) {
    result.heartbeat_evictions += deployment.la(i).heartbeat_evictions();
  }
  if (deployment.fed) {
    for (std::size_t s = 0; s < deployment.fed->shard_count(); ++s) {
      const diet::Agent::PeerStats& stats =
          deployment.fed->ma(s).peer_stats();
      result.federation_forwards += stats.forwards;
      result.federation_replies += stats.replies;
    }
  }

  // Campaign phases as spans (timestamps reconstructed from the records,
  // all in the engine's virtual time) + summary histograms.
  if (obs::tracing()) {
    auto& tracer = obs::Tracer::instance();
    tracer.complete_span(first_submit, last_completed - first_submit,
                         "campaign", "campaign");
    tracer.complete_span(result.zoom1.submitted, result.zoom1.total_time(),
                         "part1:ramsesZoom1", "campaign");
    if (!result.zoom2.empty()) {
      const double part2_start = result.zoom2.front().submitted;
      tracer.complete_span(part2_start, last_completed - part2_start,
                           "part2:ramsesZoom2", "campaign");
    }
  }
  if (obs::metrics_on()) {
    auto& m = obs::Metrics::instance();
    m.histogram("campaign_makespan_seconds", obs::duration_buckets_s())
        .observe(result.makespan);
    m.gauge("campaign_finding_time_mean_seconds").set(result.finding_mean);
    m.gauge("campaign_overhead_seconds").set(result.overhead_total);
  }
  if (obs::timeseries_on()) {
    // Closing sample so the series always covers the full campaign even
    // when the run ends between ticks — includes the summary gauges above.
    engine.publish_tag_metrics();
    obs::TimeSeries::instance().sample(engine.now());
  }
  return result;
}

}  // namespace gc::workflow
