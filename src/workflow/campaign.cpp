#include "workflow/campaign.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "des/engine.hpp"
#include "halo/halomaker.hpp"
#include "naming/registry.hpp"
#include "net/simenv.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "ramses/simulation.hpp"

namespace gc::workflow {

diet::DeploymentSpec deployment_spec_from_g5k(
    const platform::G5kDeployment& g5k, const CampaignConfig& config) {
  diet::DeploymentSpec spec;
  spec.ma_name = "MA1";
  spec.ma_node = g5k.ma_node;
  spec.policy = config.policy;
  spec.agent_tuning = config.agent_tuning;
  spec.sed_tuning = config.sed_tuning;
  spec.seed = config.seed;

  for (const platform::SedPlacement& sed : g5k.seds) {
    diet::DeploymentSpec::SedSpec s;
    s.name = sed.name;
    s.node = sed.frontal;
    s.host_power = g5k.platform.cluster(sed.cluster).model.relative_power;
    s.machines = sed.machines;
    spec.seds.push_back(std::move(s));
  }
  for (const platform::LaPlacement& la : g5k.las) {
    diet::DeploymentSpec::LaSpec l;
    l.name = la.name;
    l.node = la.node;
    l.sed_indexes = la.sed_indexes;
    spec.las.push_back(std::move(l));
  }
  return spec;
}

CampaignResult run_grid5000_campaign(const CampaignConfig& config) {
  platform::G5kDeployment g5k =
      platform::make_grid5000(config.machines_per_sed);

  des::Engine engine;
  engine.set_tie_break_seed(config.tie_break_seed);
  net::SimEnv env(engine, g5k.platform);
  naming::Registry registry;

  ServiceOptions service_options = config.services;
  service_options.work_dir += "/campaign_" + std::to_string(config.seed);
  diet::ServiceTable services;
  GC_CHECK(register_services(services, service_options).is_ok());

  const diet::DeploymentSpec spec = deployment_spec_from_g5k(g5k, config);
  diet::Deployment deployment(env, registry, services, spec);
  if (config.policy_factory) {
    deployment.ma().set_policy(config.policy_factory());
  }

  diet::Client client("client");
  env.attach(client, g5k.client_node);
  auto ma = registry.resolve("MA1");
  GC_CHECK(ma.is_ok());
  client.connect(ma.value());

  // Let registration settle before the campaign starts.
  engine.run_until(engine.now() + 2.0);

  // The namelist the client ships (IN argument 0 of both services).
  std::error_code ec;
  std::filesystem::create_directories(service_options.work_dir, ec);
  const std::string namelist_path = service_options.work_dir + "/zoom.nml";
  {
    ramses::RunParams params;
    params.npart_dim = config.resolution;
    params.box_mpc = config.size_mpc;
    std::ofstream out(namelist_path);
    out << params.to_namelist();
  }

  CampaignResult result;
  std::size_t completed = 0;
  bool zoom1_done = false;

  // Scheduled fault: kill one SED mid-campaign (bench A4).
  if (config.fault_sed_index >= 0) {
    GC_CHECK(static_cast<std::size_t>(config.fault_sed_index) <
             deployment.sed_count());
    const double delay = std::max(0.0, config.fault_at_s - engine.now());
    env.post_after(delay, [&deployment, &config]() {
      GC_WARN << "fault injection: killing "
              << deployment.sed(
                     static_cast<std::size_t>(config.fault_sed_index))
                     .name();
      deployment.sed(static_cast<std::size_t>(config.fault_sed_index))
          .fail();
    });
  }

  // Part 2: issued all at once when part 1 completes; failed calls are
  // resubmitted up to config.max_retries times each.
  auto submit_one = std::make_shared<
      std::function<void(const halo::Halo&, int)>>();
  *submit_one = [&, submit_one](const halo::Halo& halo, int retries_left) {
    const int cx = static_cast<int>(halo.x * config.resolution);
    const int cy = static_cast<int>(halo.y * config.resolution);
    const int cz = static_cast<int>(halo.z * config.resolution);
    diet::Profile profile = make_zoom2_profile(
        namelist_path, config.shipped_input_bytes, config.resolution,
        config.size_mpc, cx, cy, cz, config.nb_box, config.input_mode);
    client.call_async(
        std::move(profile),
        [&, submit_one, halo, retries_left](const gc::Status& status,
                                            diet::Profile&) {
          if (status.is_ok()) {
            ++completed;
            return;
          }
          if (retries_left > 0) {
            ++result.resubmissions;
            (*submit_one)(halo, retries_left - 1);
            return;
          }
          ++result.failed_calls;
          ++completed;
        },
        config.call_deadline_s);
  };

  auto submit_zoom2 = [&](const std::string& catalog_path) {
    auto catalog = halo::read_catalog(catalog_path);
    std::vector<halo::Halo> halos;
    if (catalog.is_ok()) halos = std::move(catalog.value().halos);
    GC_CHECK_MSG(!halos.empty(), "zoom1 produced no halos");
    for (int i = 0; i < config.sub_simulations; ++i) {
      (*submit_one)(halos[static_cast<std::size_t>(i) % halos.size()],
                    config.max_retries);
    }
  };

  diet::Profile zoom1 =
      make_zoom1_profile(namelist_path, config.shipped_input_bytes,
                         config.resolution, config.size_mpc,
                         config.input_mode);
  client.call_async(
      std::move(zoom1),
      [&](const gc::Status& status, diet::Profile& profile) {
        zoom1_done = true;
        GC_CHECK_MSG(status.is_ok(), "zoom1 failed: " + status.to_string());
        auto file = profile.arg(3).get_file();
        GC_CHECK(file.is_ok());
        submit_zoom2(file.value().path);
      });

  engine.run();
  GC_CHECK_MSG(zoom1_done, "zoom1 never completed");
  GC_CHECK_MSG(completed == static_cast<std::size_t>(config.sub_simulations),
               "campaign did not finish all sub-simulations");

  // ---- metrics ----
  const auto& records = client.records();
  GC_CHECK(records.size() >=
           1 + static_cast<std::size_t>(config.sub_simulations));
  result.zoom1 = records[0];
  result.zoom2.assign(records.begin() + 1, records.end());

  result.part1_duration = result.zoom1.total_time();

  RunningStats exec_stats;
  RunningStats finding_stats;
  double first_submit = result.zoom1.submitted;
  double last_completed = result.zoom1.completed;
  double sequential = 0.0;

  for (std::size_t i = 0; i < deployment.sed_count(); ++i) {
    const diet::Sed& sed = deployment.sed(i);
    SedSummary summary;
    summary.name = sed.name();
    const platform::SedPlacement& placement = g5k.seds[i];
    const platform::Cluster& cluster = g5k.platform.cluster(placement.cluster);
    summary.cluster = cluster.name;
    summary.site = g5k.platform.site(cluster.site).name;
    summary.machine_power = cluster.model.relative_power;
    summary.jobs = sed.job_log();
    for (const auto& job : summary.jobs) {
      if (job.service == "ramsesZoom2") {
        summary.requests += 1;
        summary.busy_seconds += job.finished - job.started;
      }
      sequential += job.finished - job.started;
    }
    result.seds.push_back(std::move(summary));
  }

  for (const auto& record : result.zoom2) {
    if (record.found >= 0.0) finding_stats.add(record.finding_time());
    if (record.ok && record.started >= 0.0 && record.completed >= 0.0) {
      exec_stats.add(record.completed - record.started);
    }
    last_completed = std::max(last_completed, record.completed);
    first_submit = std::min(first_submit, record.submitted);
  }
  finding_stats.add(result.zoom1.finding_time());

  result.part2_mean_exec = exec_stats.mean();
  result.makespan = last_completed - first_submit;
  result.sequential_estimate = sequential;
  result.finding_mean = finding_stats.mean();
  // Overhead per the paper: finding time + service initiation, everything
  // else being either payload transfer or computation.
  result.overhead_total =
      finding_stats.sum() +
      config.sed_tuning.init_delay *
          static_cast<double>(config.sub_simulations + 1);
  result.network_bytes = env.bytes_sent();
  result.network_messages = env.messages_sent();

  // Campaign phases as spans (timestamps reconstructed from the records,
  // all in the engine's virtual time) + summary histograms.
  if (obs::tracing()) {
    auto& tracer = obs::Tracer::instance();
    tracer.complete_span(first_submit, last_completed - first_submit,
                         "campaign", "campaign");
    tracer.complete_span(result.zoom1.submitted, result.zoom1.total_time(),
                         "part1:ramsesZoom1", "campaign");
    if (!result.zoom2.empty()) {
      const double part2_start = result.zoom2.front().submitted;
      tracer.complete_span(part2_start, last_completed - part2_start,
                           "part2:ramsesZoom2", "campaign");
    }
  }
  if (obs::metrics_on()) {
    auto& m = obs::Metrics::instance();
    m.histogram("campaign_makespan_seconds", obs::duration_buckets_s())
        .observe(result.makespan);
    m.gauge("campaign_finding_time_mean_seconds").set(result.finding_mean);
    m.gauge("campaign_overhead_seconds").set(result.overhead_total);
  }
  return result;
}

}  // namespace gc::workflow
