#include "workflow/services.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "galaxy/galaxymaker.hpp"
#include "halo/halomaker.hpp"
#include "io/namelist.hpp"
#include "io/tar.hpp"
#include "ramses/pm.hpp"
#include "ramses/simulation.hpp"
#include "tree/treemaker.hpp"

namespace gc::workflow {

namespace {

std::atomic<std::uint64_t> g_job_counter{0};

using diet::BaseType;
using diet::DataType;
using diet::Persistence;

void set_file_arg(diet::ProfileDesc& desc, int index) {
  desc.arg(index).type = DataType::kFile;
  desc.arg(index).base = BaseType::kChar;
}

void set_int_arg(diet::ProfileDesc& desc, int index) {
  desc.arg(index).type = DataType::kScalar;
  desc.arg(index).base = BaseType::kInt;
}

/// Decoded request arguments common to both services.
struct ZoomArgs {
  std::string namelist_path;
  int resolution = 128;
  int size_mpc = 100;
  int cx = 0, cy = 0, cz = 0;
  int nb_box = 0;
  bool zoom2 = false;
};

gc::Result<ZoomArgs> decode_args(diet::Profile& profile) {
  ZoomArgs args;
  args.zoom2 = profile.path() == "ramsesZoom2";
  auto file = profile.arg(0).get_file();
  if (!file.is_ok()) return file.status();
  args.namelist_path = file.value().path;
  auto geti = [&](int index) -> gc::Result<int> {
    auto v = profile.arg(index).get_scalar<std::int32_t>();
    if (!v.is_ok()) return v.status();
    return static_cast<int>(v.value());
  };
  auto resolution = geti(1);
  if (!resolution.is_ok()) return resolution.status();
  args.resolution = resolution.value();
  auto size = geti(2);
  if (!size.is_ok()) return size.status();
  args.size_mpc = size.value();
  if (args.zoom2) {
    auto cx = geti(3);
    auto cy = geti(4);
    auto cz = geti(5);
    auto nb = geti(6);
    if (!cx.is_ok()) return cx.status();
    if (!cy.is_ok()) return cy.status();
    if (!cz.is_ok()) return cz.status();
    if (!nb.is_ok()) return nb.status();
    args.cx = cx.value();
    args.cy = cy.value();
    args.cz = cz.value();
    args.nb_box = nb.value();
  }
  if (args.resolution < 2 || args.size_mpc <= 0) {
    return make_error(ErrorCode::kInvalidArgument, "bad zoom arguments");
  }
  return args;
}

platform::ZoomJobSpec spec_of(const ZoomArgs& args) {
  platform::ZoomJobSpec spec;
  spec.resolution = args.resolution;
  spec.box_mpc = args.size_mpc;
  spec.zoom_levels = args.zoom2 ? args.nb_box : 0;
  return spec;
}

/// Builds the (down-scaled, in real mode) run parameters for a request.
ramses::RunParams real_params(const ZoomArgs& args,
                              const ServiceOptions& options,
                              std::uint64_t seed) {
  ramses::RunParams params;
  // Honour the shipped namelist when it is readable; profile scalars win
  // for the geometry (the paper passes them separately).
  if (auto nml = io::Namelist::load(args.namelist_path); nml.is_ok()) {
    if (auto parsed = ramses::RunParams::from_namelist(nml.value());
        parsed.is_ok()) {
      params = parsed.value();
    }
  }
  params.npart_dim = std::min(args.resolution, options.real_max_resolution);
  params.pm_grid = params.npart_dim * 2;
  params.box_mpc = args.size_mpc;
  params.steps = options.real_steps;
  params.seed = seed;
  params.aout = {0.4, 0.6, 0.8, 1.0};
  if (args.zoom2) {
    params.zoom_levels = std::max(1, args.nb_box);
    const double cell = params.box_mpc / args.resolution;
    params.zoom_centre = {args.cx * cell, args.cy * cell, args.cz * cell};
  }
  return params;
}

std::string job_dir(const ServiceOptions& options,
                    diet::ServiceContext& ctx) {
  const std::uint64_t id = g_job_counter.fetch_add(1);
  // Fixed-width id: the directory name rides the wire as a file-path
  // argument, so its length must not depend on how many jobs ran before
  // (payload bytes feed modeled transfer times).
  char tag[24];
  std::snprintf(tag, sizeof(tag), "job_%08llu",
                static_cast<unsigned long long>(id));
  std::string dir = options.work_dir + "/" + ctx.sed_name() + "/" + tag;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

halo::ParticleView view_of(const ramses::Snapshot& snap,
                           std::vector<double>& vx, std::vector<double>& vy,
                           std::vector<double>& vz) {
  const ramses::ParticleSet& p = snap.particles;
  vx.resize(p.size());
  vy.resize(p.size());
  vz.resize(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    vx[i] = ramses::kms_from_momentum(p.px[i], snap.aexp, snap.box_mpc);
    vy[i] = ramses::kms_from_momentum(p.py[i], snap.aexp, snap.box_mpc);
    vz[i] = ramses::kms_from_momentum(p.pz[i], snap.aexp, snap.box_mpc);
  }
  return halo::ParticleView{&p.x,  &p.y,  &p.z, &vx,
                            &vy,   &vz,   &p.mass, &p.id};
}

/// Fabricates a plausible halo catalog (sim mode): power-law masses,
/// uniform positions.
halo::HaloCatalog fabricate_catalog(int count, int resolution, Rng& rng) {
  halo::HaloCatalog catalog;
  catalog.aexp = 1.0;
  catalog.box_mpc = 100.0;
  catalog.total_particles = static_cast<std::size_t>(resolution) *
                            static_cast<std::size_t>(resolution) *
                            static_cast<std::size_t>(resolution);
  for (int i = 0; i < count; ++i) {
    halo::Halo h;
    h.id = static_cast<std::uint64_t>(i + 1);
    // Press-Schechter-ish: steep power-law tail.
    h.mass = 1e-4 * std::pow(rng.uniform(0.02, 1.0), -1.7) /
             static_cast<double>(count);
    h.npart = static_cast<std::size_t>(
        std::max(20.0, h.mass * static_cast<double>(catalog.total_particles)));
    h.x = rng.uniform();
    h.y = rng.uniform();
    h.z = rng.uniform();
    h.vx = rng.normal(0.0, 300.0);
    h.vy = rng.normal(0.0, 300.0);
    h.vz = rng.normal(0.0, 300.0);
    h.sigma_v = 100.0 * std::cbrt(h.mass * 1e6);
    catalog.halos.push_back(std::move(h));
  }
  std::sort(catalog.halos.begin(), catalog.halos.end(),
            [](const halo::Halo& a, const halo::Halo& b) {
              return a.mass > b.mass;
            });
  for (std::size_t i = 0; i < catalog.halos.size(); ++i) {
    catalog.halos[i].id = i + 1;
  }
  return catalog;
}

int real_zoom1(const ZoomArgs& args, const ServiceOptions& options,
               diet::ServiceContext& ctx, std::string* catalog_path) {
  const ramses::RunParams params = real_params(args, options, 1000);
  const ramses::RunResult result = ramses::run_simulation(params);
  if (result.snapshots.empty()) return 2;
  const ramses::Snapshot& final_snap = result.snapshots.back();
  std::vector<double> vx, vy, vz;
  const halo::HaloCatalog catalog =
      halo::find_halos(view_of(final_snap, vx, vy, vz), final_snap.aexp,
                       final_snap.box_mpc, halo::FofOptions{0.2, 8});
  const std::string dir = job_dir(options, ctx);
  *catalog_path = dir + "/halo_catalog.bin";
  if (!halo::write_catalog(*catalog_path, catalog).is_ok()) return 3;
  return 0;
}

int real_zoom2(const ZoomArgs& args, const ServiceOptions& options,
               diet::ServiceContext& ctx, std::string* tar_path) {
  const ramses::RunParams params =
      real_params(args, options, 2000 + static_cast<std::uint64_t>(args.cx));
  const ramses::RunResult result = ramses::run_simulation(params);
  if (result.snapshots.empty()) return 2;

  // GALICS post-processing chain over the snapshots.
  std::vector<halo::HaloCatalog> catalogs;
  for (const ramses::Snapshot& snap : result.snapshots) {
    std::vector<double> vx, vy, vz;
    catalogs.push_back(halo::find_halos(view_of(snap, vx, vy, vz), snap.aexp,
                                        snap.box_mpc,
                                        halo::FofOptions{0.2, 8}));
  }
  const tree::MergerForest forest = tree::build_forest(catalogs);
  const cosmo::Cosmology cosmology(params.cosmology);
  const auto galaxy_catalogs = galaxy::run_sam(forest, cosmology);

  const std::string dir = job_dir(options, ctx);
  io::TarWriter tar;
  auto status = tar.add_text("README.txt",
                             strformat("ramsesZoom2 results (resolution %d, "
                                       "%d nested boxes)\n",
                                       args.resolution, args.nb_box));
  for (std::size_t s = 0; s < catalogs.size() && status.is_ok(); ++s) {
    status = tar.add_text(strformat("halos_%03zu.txt", s),
                          halo::catalog_to_text(catalogs[s]));
  }
  if (status.is_ok() && !galaxy_catalogs.empty()) {
    status = tar.add_text("galaxies.txt",
                          galaxy::catalog_to_text(galaxy_catalogs.back()));
  }
  if (!status.is_ok()) return 3;
  *tar_path = dir + "/results.tar";
  if (!tar.write(*tar_path).is_ok()) return 3;
  return 0;
}

}  // namespace

diet::ProfileDesc zoom1_profile_desc() {
  diet::ProfileDesc desc("ramsesZoom1", 2, 2, 4);
  set_file_arg(desc, 0);
  set_int_arg(desc, 1);
  set_int_arg(desc, 2);
  set_file_arg(desc, 3);
  set_int_arg(desc, 4);
  return desc;
}

diet::ProfileDesc zoom2_profile_desc() {
  // The paper's exact shape: diet_profile_desc_alloc("ramsesZoom2", 6, 6, 8).
  diet::ProfileDesc desc("ramsesZoom2", 6, 6, 8);
  set_file_arg(desc, 0);
  for (int i = 1; i <= 6; ++i) set_int_arg(desc, i);
  set_file_arg(desc, 7);
  set_int_arg(desc, 8);
  return desc;
}

gc::Status register_services(diet::ServiceTable& table,
                             const ServiceOptions& options) {
  const platform::RamsesCostModel cost = options.cost_model;

  // Plug-in performance estimators (paper ref [2]): per-service compute
  // estimate the MCT policy consumes. The campaign's jobs share one spec,
  // so the estimate uses the canonical geometry.
  diet::PerfEstimator zoom1_estimator =
      [cost](const diet::ProfileDesc&, double power, int machines,
             sched::Estimation& est) {
        est.service_comp_s = cost.duration(
            cost.zoom1_work(platform::ZoomJobSpec{}), power, machines);
      };
  diet::PerfEstimator zoom2_estimator =
      [cost](const diet::ProfileDesc&, double power, int machines,
             sched::Estimation& est) {
        platform::ZoomJobSpec spec;
        spec.zoom_levels = 2;
        est.service_comp_s =
            cost.duration(cost.zoom2_work(spec), power, machines);
      };

  ServiceOptions opts = options;

  diet::SolveFn solve_zoom1 = [opts, cost](diet::ServiceContext& ctx) {
    auto args = decode_args(ctx.profile());
    if (!args.is_ok()) {
      ctx.profile().arg(4).set_scalar<std::int32_t>(
          1, BaseType::kInt, Persistence::kVolatile);
      ctx.finish(1);
      return;
    }
    const ZoomArgs a = args.value();
    const double modeled = cost.duration_with_jitter(
        cost.zoom1_work(spec_of(a)), ctx.host_power(), ctx.machines(),
        ctx.rng());

    auto catalog_path = std::make_shared<std::string>();
    std::function<int()> work;
    if (opts.mode == ServiceMode::kReal) {
      work = [a, opts, &ctx, catalog_path]() {
        return real_zoom1(a, opts, ctx, catalog_path.get());
      };
    } else {
      work = [a, opts, &ctx, catalog_path]() {
        // The catalog is science output: derive it from the request's
        // inputs alone, never from the SED's draw history — a retried or
        // rescheduled call must fabricate the identical catalog on any
        // server (the chaos suite diffs science against fault-free runs).
        Rng catalog_rng(0x9e3779b97f4a7c15ULL ^
                        (static_cast<std::uint64_t>(a.resolution) << 32) ^
                        static_cast<std::uint64_t>(opts.sim_min_halos));
        const halo::HaloCatalog catalog = fabricate_catalog(
            opts.sim_min_halos, a.resolution, catalog_rng);
        const std::string dir = job_dir(opts, ctx);
        *catalog_path = dir + "/halo_catalog.bin";
        return halo::write_catalog(*catalog_path, catalog).is_ok() ? 0 : 3;
      };
    }
    ctx.compute(modeled, std::move(work), [&ctx, opts, catalog_path](int rc) {
      diet::Profile& profile = ctx.profile();
      if (rc == 0) {
        const std::int64_t modeled_bytes =
            opts.mode == ServiceMode::kSim ? opts.catalog_bytes : -1;
        // The client drives part 2 from this catalog, so a persistent run
        // uses PERSISTENT_RETURN: keep a replica on the SED (and in the
        // hierarchy catalog) but still ship the value home.
        const Persistence zoom1_mode =
            opts.output_mode == Persistence::kPersistent
                ? Persistence::kPersistentReturn
                : opts.output_mode;
        profile.arg(3).set_file(*catalog_path, zoom1_mode, modeled_bytes);
      }
      profile.arg(4).set_scalar<std::int32_t>(rc, BaseType::kInt,
                                              Persistence::kVolatile);
      ctx.finish(rc);
    });
  };

  diet::SolveFn solve_zoom2 = [opts, cost](diet::ServiceContext& ctx) {
    auto args = decode_args(ctx.profile());
    if (!args.is_ok()) {
      ctx.profile().arg(8).set_scalar<std::int32_t>(
          1, BaseType::kInt, Persistence::kVolatile);
      ctx.finish(1);
      return;
    }
    const ZoomArgs a = args.value();
    const double modeled = cost.duration_with_jitter(
        cost.zoom2_work(spec_of(a)), ctx.host_power(), ctx.machines(),
        ctx.rng());

    auto tar_path = std::make_shared<std::string>();
    std::function<int()> work;
    if (opts.mode == ServiceMode::kReal) {
      work = [a, opts, &ctx, tar_path]() {
        return real_zoom2(a, opts, ctx, tar_path.get());
      };
    } else {
      work = [a, opts, &ctx, tar_path]() {
        io::TarWriter tar;
        auto status = tar.add_text(
            "README.txt",
            strformat("simulated ramsesZoom2 (resolution %d, centre "
                      "%d,%d,%d, %d boxes)\n",
                      a.resolution, a.cx, a.cy, a.cz, a.nb_box));
        if (!status.is_ok()) return 3;
        const std::string dir = job_dir(opts, ctx);
        *tar_path = dir + "/results.tar";
        return tar.write(*tar_path).is_ok() ? 0 : 3;
      };
    }
    ctx.compute(modeled, std::move(work), [&ctx, opts, tar_path](int rc) {
      diet::Profile& profile = ctx.profile();
      if (rc == 0) {
        const std::int64_t modeled_bytes =
            opts.mode == ServiceMode::kSim ? opts.tarball_bytes : -1;
        profile.arg(7).set_file(*tar_path, opts.output_mode,
                                modeled_bytes);
      }
      profile.arg(8).set_scalar<std::int32_t>(rc, BaseType::kInt,
                                              Persistence::kVolatile);
      ctx.finish(rc);
    });
  };

  auto status = table.add(zoom1_profile_desc(), std::move(solve_zoom1),
                          std::move(zoom1_estimator));
  if (!status.is_ok()) return status;
  return table.add(zoom2_profile_desc(), std::move(solve_zoom2),
                   std::move(zoom2_estimator));
}

diet::Profile make_zoom1_profile(const std::string& namelist_path,
                                 std::int64_t namelist_bytes, int resolution,
                                 int size_mpc,
                                 diet::Persistence namelist_mode) {
  diet::Profile profile("ramsesZoom1", 2, 2, 4);
  profile.arg(0).set_file(namelist_path, namelist_mode, namelist_bytes);
  profile.arg(1).set_scalar<std::int32_t>(resolution, BaseType::kInt,
                                          Persistence::kVolatile);
  profile.arg(2).set_scalar<std::int32_t>(size_mpc, BaseType::kInt,
                                          Persistence::kVolatile);
  // OUT arguments "should be declared even if their values is set to NULL"
  // (Section 4.3.2): shape only, no value.
  profile.arg(3).desc.type = DataType::kFile;
  profile.arg(3).desc.base = BaseType::kChar;
  profile.arg(4).desc.type = DataType::kScalar;
  profile.arg(4).desc.base = BaseType::kInt;
  return profile;
}

diet::Profile make_zoom2_profile(const std::string& namelist_path,
                                 std::int64_t namelist_bytes, int resolution,
                                 int size_mpc, int cx, int cy, int cz,
                                 int nb_box,
                                 diet::Persistence namelist_mode) {
  diet::Profile profile("ramsesZoom2", 6, 6, 8);
  profile.arg(0).set_file(namelist_path, namelist_mode, namelist_bytes);
  auto set_int = [&profile](int index, int value) {
    profile.arg(index).set_scalar<std::int32_t>(
        static_cast<std::int32_t>(value), BaseType::kInt,
        Persistence::kVolatile);
  };
  set_int(1, resolution);
  set_int(2, size_mpc);
  set_int(3, cx);
  set_int(4, cy);
  set_int(5, cz);
  set_int(6, nb_box);
  profile.arg(7).desc.type = DataType::kFile;
  profile.arg(7).desc.base = BaseType::kChar;
  profile.arg(8).desc.type = DataType::kScalar;
  profile.arg(8).desc.base = BaseType::kInt;
  return profile;
}

}  // namespace gc::workflow
