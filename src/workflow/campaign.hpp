// The Section 5 experiment, as a reusable harness.
//
// "The client requests a 128^3 particles 100 Mpc.h^-1 simulation (first
// part). When he receives the results, he requests simultaneously 100
// sub-simulations (second part). As each server cannot compute more than
// one simulation at the same time, we won't be able to have more than 11
// parallel computations at the same time." (Section 5.1.)
//
// run_grid5000_campaign deploys DIET on the modeled Grid'5000 (DES),
// replays that client behaviour, and returns everything Figures 4 and 5
// plus the in-text results are drawn from.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "diet/client.hpp"
#include "diet/deployment.hpp"
#include "platform/grid5000.hpp"
#include "sched/policy.hpp"
#include "workflow/services.hpp"

namespace gc::workflow {

struct CampaignConfig {
  int resolution = 128;      ///< particles per dimension
  int size_mpc = 100;        ///< initial conditions size (Mpc/h)
  int nb_box = 2;            ///< zoom levels per sub-simulation
  int sub_simulations = 100; ///< second-part request count
  std::string policy = "default";
  /// Optional user-written plug-in scheduler (paper ref [2]); overrides
  /// `policy` at the MA when set.
  std::function<std::unique_ptr<sched::Policy>()> policy_factory;
  int machines_per_sed = 16;
  std::uint64_t seed = 7;
  /// DES same-timestamp tie-break seed (0 = insertion order). Any value
  /// must produce bit-identical campaign results; the schedule fuzzer
  /// sweeps this to prove ordering assumptions hold.
  std::uint64_t tie_break_seed = 0;
  ServiceOptions services;        ///< mode defaults to kSim
  diet::AgentTuning agent_tuning; ///< calibrated defaults
  diet::SedTuning sed_tuning;

  /// Fault injection: kill SED `fault_sed_index` (deployment order) at
  /// virtual time `fault_at_s`. -1 disables. Combine with a call deadline
  /// and retries to exercise the middleware's failure handling (bench A4).
  int fault_sed_index = -1;
  double fault_at_s = 0.0;
  /// Per-zoom2-call deadline in virtual seconds (0 = unbounded).
  double call_deadline_s = 0.0;
  /// Resubmissions allowed per failed zoom2 call.
  int max_retries = 0;

  /// Modeled size of the input file every request ships (the namelist is
  /// ~4 KiB; bench B1 swaps in the pre-generated IC archive).
  std::int64_t shipped_input_bytes = 4096;
  /// Persistence mode of that input (kPersistent enables the DTM path).
  diet::Persistence input_mode = diet::Persistence::kVolatile;
  /// Write-replication factor for persistent data (1 = holder only). The
  /// holder's parent LA fans fresh registrations out to this many SEDs,
  /// so a crash still leaves a live replica to pull from.
  int replicas = 1;

  /// Chaos experiment: a fault::parse_plan spelling ("" or "none" = off).
  /// When active, the plan's tolerance knobs (client retries, heartbeats)
  /// override the tunings above, the net layer tampers with messages, and
  /// the plan's process-fault schedule is materialized over the
  /// deployment. (fault_sed_index above is the older single-SED bench.)
  std::string fault_plan;
  /// Seed for every fault decision (message tampering, victim selection,
  /// fault times). Same plan + same seed = bit-identical chaos run.
  std::uint64_t fault_seed = 1;

  /// Contention-aware network & disk model: bulk transfers become flows
  /// that fair-share link capacity (net::FlowModel) instead of being
  /// priced instantly on an idle network. Off by default — the paper's
  /// closed-form costs — and bit-identical to the pre-flow-model runs.
  bool contention = false;
  /// MPWide-style WAN engine knobs, applied to every SED's bulk dtm
  /// pushes when set: parallel stripes per transfer (>1 enables striping),
  /// relay through the requester's LA, modeled compression.
  int wan_streams = 1;
  bool wan_relay = false;
  double wan_compression = 0.0;
  double wan_compress_bps = 0.0;
  /// Scales every RENATER WAN link's bandwidth (1.0 = the paper's 2.5
  /// Gb/s); < 1 narrows the backbone to provoke congestion.
  double wan_bandwidth_scale = 1.0;
  /// Per-stream TCP ceiling on WAN links in bytes/s (0 = none): the lossy
  /// long-fat-network effect striped transfers exist to beat.
  double wan_per_stream_bps = 0.0;

  /// Number of federated MA hierarchies. 1 (the default) builds the exact
  /// pre-federation single hierarchy; N > 1 splits the deployment's LAs
  /// round-robin into N shards whose MAs peer in a full mesh (with
  /// federate_always, since every shard offers the same services). The
  /// client still talks to MA1; the science digest must not depend on N.
  int federation_mas = 1;
};

struct SedSummary {
  std::string name;
  std::string cluster;
  std::string site;
  double machine_power = 1.0;   ///< per-machine relative power
  std::uint64_t requests = 0;   ///< zoom2 requests assigned (Figure 4 left)
  double busy_seconds = 0.0;    ///< total execution time (Figure 4 right)
  std::vector<diet::Sed::JobRecord> jobs;  ///< Gantt rows
};

struct CampaignResult {
  diet::Client::CallRecord zoom1;
  std::vector<diet::Client::CallRecord> zoom2;  ///< submission order
  std::vector<SedSummary> seds;

  double part1_duration = 0.0;      ///< zoom1 submit -> complete
  double part2_mean_exec = 0.0;     ///< mean zoom2 execution time
  double makespan = 0.0;            ///< first submit -> last completion
  double sequential_estimate = 0.0; ///< sum of all execution times
  double finding_mean = 0.0;        ///< mean finding time (Figure 5)
  double overhead_total = 0.0;      ///< finding + init, summed over calls
  std::uint64_t failed_calls = 0;   ///< calls that never succeeded
  std::uint64_t resubmissions = 0;  ///< retries issued after failures
  std::int64_t network_bytes = 0;   ///< total bytes charged to the network
  std::uint64_t network_messages = 0;
  /// Bytes that crossed a RENATER site boundary — the traffic persistence
  /// and locality-aware scheduling are meant to save (BENCH_datalocality).
  std::int64_t wan_bytes = 0;

  /// Order-independent FNV-1a hash of the science every successful zoom2
  /// call produced (centre, zoom depth, return code). A chaos run is
  /// scientifically correct iff this matches the fault-free run's digest.
  std::uint64_t science_digest = 0;

  // Chaos-run accounting (all zero when no fault plan is active).
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t sed_crashes = 0;
  std::uint64_t sed_restarts = 0;
  std::uint64_t la_deaths = 0;
  std::uint64_t sed_isolations = 0;
  std::uint64_t heartbeat_evictions = 0;  ///< watchdog firings, all agents

  // Federation accounting (zero when federation_mas == 1).
  std::uint64_t federation_forwards = 0;  ///< collects sent MA -> peer MA
  std::uint64_t federation_replies = 0;   ///< peer candidate lists returned

  // Flow-model accounting (zero when contention is off).
  std::uint64_t flows_completed = 0;    ///< bulk transfers run as flows
  std::uint64_t peak_active_flows = 0;  ///< max simultaneous flows
};

/// Runs the campaign on the simulated Grid'5000 deployment of Section 5.1.
CampaignResult run_grid5000_campaign(const CampaignConfig& config);

/// Builds a diet::DeploymentSpec from a platform::G5kDeployment (shared by
/// the campaign and the benches that vary the hierarchy).
diet::DeploymentSpec deployment_spec_from_g5k(
    const platform::G5kDeployment& g5k, const CampaignConfig& config);

}  // namespace gc::workflow
