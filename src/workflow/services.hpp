// The paper's two DIET services.
//
// "The cosmological simulation is divided in two services: ramsesZoom1 and
// ramsesZoom2 [...] The first one is used to determine interesting parts
// of the universe, while the second is used to study these parts in
// details." (Section 4.2.1.)
//
// Profiles follow the paper exactly:
//   ramsesZoom2: arg.profile = diet_profile_desc_alloc("ramsesZoom2",6,6,8)
//     0 FILE  namelist with RAMSES parameters           (IN)
//     1 INT   resolution (particles per dimension)      (IN)
//     2 INT   size of the initial conditions, Mpc/h     (IN)
//     3 INT   centre cx (grid cells)                    (IN)
//     4 INT   centre cy                                 (IN)
//     5 INT   centre cz                                 (IN)
//     6 INT   number of zoom levels (nested boxes)      (IN)
//     7 FILE  tarball with post-processed results       (OUT)
//     8 INT   error code (0 = success)                  (OUT)
//   ramsesZoom1 (the low-resolution first part):
//     0 FILE namelist (IN), 1 INT resolution (IN), 2 INT size (IN),
//     3 FILE halo catalog (OUT), 4 INT error code (OUT)
//
// Two execution modes share the registration code:
//   kReal : the solve functions actually run GRAFIC -> PM/N-body ->
//           HaloMaker -> TreeMaker -> GalaxyMaker and tar the results
//           (examples; laptop-scale resolutions);
//   kSim  : the solve functions charge the calibrated cost model to the
//           virtual clock and fabricate statistically-plausible outputs
//           (the Grid'5000-scale benches).
#pragma once

#include <string>

#include "diet/service.hpp"
#include "platform/cost_model.hpp"

namespace gc::workflow {

enum class ServiceMode { kReal, kSim };

struct ServiceOptions {
  ServiceMode mode = ServiceMode::kSim;
  platform::RamsesCostModel cost_model;
  /// Modeled size of the zoom2 result tarball (charged to the network).
  std::int64_t tarball_bytes = 200 * 1024 * 1024;
  /// Modeled size of the zoom1 halo catalog file.
  std::int64_t catalog_bytes = 4 * 1024 * 1024;
  /// Directory for real outputs (namelists, snapshots, tars).
  std::string work_dir = "/tmp/gridcosmo";
  /// Real mode: cap the actually-simulated resolution (the profile still
  /// carries the requested one; the run is scaled down so examples finish
  /// in seconds).
  int real_max_resolution = 32;
  int real_steps = 24;
  /// Fabricated zoom1 catalogs contain at least this many halos so the
  /// campaign can always pick its 100 re-simulation targets.
  int sim_min_halos = 128;
  /// Persistence of the services' OUT files (zoom1 halo catalog, zoom2
  /// result tarball). DIET_PERSISTENT keeps the snapshot on the SED and
  /// registers it in the hierarchy's replica catalog, so a later request
  /// (zoom2 reading zoom1's outputs, a re-run) finds the bytes in place
  /// instead of re-shipping them across the WAN.
  diet::Persistence output_mode = diet::Persistence::kVolatile;
};

/// Builds the two profile descriptions (shared by clients and servers —
/// "clients and servers must use the same problem description").
diet::ProfileDesc zoom1_profile_desc();
diet::ProfileDesc zoom2_profile_desc();

/// Registers ramsesZoom1 and ramsesZoom2 (with plug-in performance
/// estimators for the MCT scheduler) into `table`.
gc::Status register_services(diet::ServiceTable& table,
                             const ServiceOptions& options);

/// Client-side profile builders. `namelist_mode` selects the persistence
/// of the input file: DIET_PERSISTENT lets repeat calls to the same SED
/// ship an id instead of the bytes (bench B1 measures the effect when the
/// input is the pre-generated multi-level IC archive instead of a small
/// namelist).
diet::Profile make_zoom1_profile(
    const std::string& namelist_path, std::int64_t namelist_bytes,
    int resolution, int size_mpc,
    diet::Persistence namelist_mode = diet::Persistence::kVolatile);
diet::Profile make_zoom2_profile(
    const std::string& namelist_path, std::int64_t namelist_bytes,
    int resolution, int size_mpc, int cx, int cy, int cz, int nb_box,
    diet::Persistence namelist_mode = diet::Persistence::kVolatile);

}  // namespace gc::workflow
