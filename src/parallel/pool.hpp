// Shared intra-process thread pool for the numerical kernels.
//
// The FFT pencil loops, the PM deposit/interpolation/leapfrog sweeps, the
// GRAFIC k-space loops and the FoF cell sweep are all embarrassingly (or
// reducibly) parallel; this module gives them one lazily-initialized pool
// instead of each spinning its own threads next to RealEnv and MiniMPI.
//
// Determinism contract (relied on by test_parallel and the snapshot
// byte-identity guarantee):
//   - `parallel_for` requires the body to write disjoint outputs per index;
//     chunk boundaries then cannot affect the result, so any thread count
//     (including the inline serial path) produces identical bytes.
//   - `for_each_chunk` / `parallel_reduce` use chunk boundaries that depend
//     only on (begin, end, grain) — never on the thread count — and
//     reductions combine the per-chunk partials in ascending chunk order on
//     the calling thread. No atomics ever touch floating-point accumulators.
//
// Thread count: GC_THREADS env var if set (>= 1), else
// std::thread::hardware_concurrency(); `set_thread_count` overrides at run
// time (benches sweep it). A count of 1 means no worker threads exist and
// every call runs inline on the caller.
//
// Nesting: a parallel region entered from inside a pool worker (or from a
// chunk the caller is executing) runs inline and serial on that thread —
// same arithmetic as the 1-thread path, no deadlock, no oversubscription.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace gc::parallel {

/// Current configured thread count (>= 1). First call initializes from
/// GC_THREADS / hardware_concurrency.
std::size_t thread_count();

/// Reconfigures the pool. 0 restores the default (env / hardware). Safe to
/// call between parallel regions; joins and respawns workers as needed.
void set_thread_count(std::size_t n);

/// Runs fn(chunk_begin, chunk_end) over [begin, end) split into chunks of
/// `grain` indices (the last chunk may be short). The body must write
/// disjoint outputs per index. With 1 thread (or when nested inside another
/// region) this is exactly one inline fn(begin, end) call.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

/// Runs fn(chunk_index, chunk_begin, chunk_end) for every chunk of the
/// fixed decomposition of [begin, end) by `grain`. Unlike parallel_for, the
/// serial path visits the *same* chunks (in ascending order) as the
/// parallel path, so per-chunk partial results are reproducible at any
/// thread count. Returns the number of chunks.
std::size_t for_each_chunk(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

/// Number of chunks the fixed decomposition produces (0 for empty ranges).
constexpr std::size_t chunk_count(std::size_t begin, std::size_t end,
                                  std::size_t grain) {
  const std::size_t n = end > begin ? end - begin : 0;
  const std::size_t g = grain == 0 ? 1 : grain;
  return (n + g - 1) / g;
}

/// Ordered map-reduce: partials[c] = map(chunk c) computed in parallel,
/// then combined left-to-right in chunk order on the calling thread.
/// Byte-identical results at any thread count.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T identity, MapFn&& map, CombineFn&& combine) {
  const std::size_t nchunks = chunk_count(begin, end, grain);
  if (nchunks == 0) return identity;
  std::vector<T> partials(nchunks, identity);
  for_each_chunk(begin, end, grain,
                 [&](std::size_t c, std::size_t b, std::size_t e) {
                   partials[c] = map(b, e);
                 });
  T acc = std::move(identity);
  for (std::size_t c = 0; c < nchunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

/// True while the current thread is executing inside a parallel region
/// (worker or participating caller); nested regions run inline then.
bool in_parallel_region();

}  // namespace gc::parallel
