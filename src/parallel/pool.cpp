#include "parallel/pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "check/lockorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gc::parallel {

namespace {

thread_local bool tls_in_region = false;

/// Wall-time of one chunk execution; a no-op (no clock read) while metrics
/// are off. The histogram reference is cached — Metrics::reset() zeroes
/// values but never invalidates instruments.
void timed_chunk(const std::function<void(std::size_t)>& fn, std::size_t i) {
  if (!obs::metrics_on()) {
    fn(i);
    return;
  }
  static obs::Histogram& chunk_seconds = obs::Metrics::instance().histogram(
      "parallel_chunk_seconds", obs::latency_buckets_s());
  const double t0 = obs::wall_seconds();
  fn(i);
  chunk_seconds.observe(obs::wall_seconds() - t0);
}

constexpr std::size_t kMaxThreads = 256;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("GC_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

/// One parallel region: a batch of chunk indices claimed via an atomic
/// counter. Lives in a shared_ptr so late-waking workers can probe an
/// already-finished region safely.
struct Region {
  std::function<void(std::size_t)> fn;  ///< fn(chunk_index)
  std::size_t nchunks = 0;
  std::atomic<std::size_t> next{0};
  std::mutex m;
  std::condition_variable cv_done;
  std::size_t done = 0;             ///< executed chunks, guarded by m
  std::exception_ptr error;         ///< first failure, guarded by m
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::size_t threads() {
    GC_TRACKED_LOCK(lock, config_mutex_, "pool.config");
    return threads_;
  }

  void resize(std::size_t n) {
    GC_TRACKED_LOCK(config, config_mutex_, "pool.config");
    // Serialize against in-flight regions so workers die between batches.
    GC_TRACKED_LOCK(submit, submit_mutex_, "pool.submit");
    if (n == 0) n = default_thread_count();
    // Cap absurd requests (negative CLI values cast to size_t, runaway
    // GC_THREADS) — beyond this, more workers only add contention.
    if (n > kMaxThreads) n = kMaxThreads;
    if (n == threads_) return;
    stop_workers();
    threads_ = n;
    spawn_workers();
  }

  void run(std::size_t nchunks, const std::function<void(std::size_t)>& fn) {
    if (nchunks == 0) return;
    if (tls_in_region || nchunks == 1 || threads() == 1) {
      run_inline(nchunks, fn);
      return;
    }
    GC_TRACKED_LOCK(submit, submit_mutex_, "pool.submit");
    if (workers_.empty()) {  // resized to 1 while we waited
      run_inline(nchunks, fn);
      return;
    }
    auto region = std::make_shared<Region>();
    region->fn = fn;
    region->nchunks = nchunks;
    {
      GC_TRACKED_LOCK(lock, mutex_, "pool.queue");
      region_ = region;
      ++epoch_;
    }
    cv_work_.notify_all();
    execute(*region);  // the caller is a worker too
    {
      check::LockTracker tracker("pool.region", __FILE__, __LINE__);
      std::unique_lock<std::mutex> lock(region->m);
      region->cv_done.wait(lock,
                           [&] { return region->done == region->nchunks; });
    }
    {
      GC_TRACKED_LOCK(lock, mutex_, "pool.queue");
      region_.reset();
    }
    if (region->error) std::rethrow_exception(region->error);
  }

 private:
  Pool() {
    threads_ = default_thread_count();
    spawn_workers();
  }

  ~Pool() { stop_workers(); }

  void spawn_workers() {
    stop_ = false;
    for (std::size_t i = 1; i < threads_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void stop_workers() {
    {
      GC_TRACKED_LOCK(lock, mutex_, "pool.queue");
      stop_ = true;
      ++epoch_;
    }
    cv_work_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Region> region;
      {
        check::LockTracker tracker("pool.queue", __FILE__, __LINE__);
        std::unique_lock<std::mutex> lock(mutex_);
        cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        region = region_;
      }
      if (region) execute(*region);
    }
  }

  /// Claims and executes chunks until the region is drained. Marks the
  /// thread as in-region so nested parallel calls run inline.
  static void execute(Region& region) {
    const bool was_in_region = tls_in_region;
    tls_in_region = true;
    for (;;) {
      const std::size_t i = region.next.fetch_add(1);
      if (i >= region.nchunks) break;
      std::exception_ptr error;
      try {
        timed_chunk(region.fn, i);
      } catch (...) {
        error = std::current_exception();
      }
      GC_TRACKED_LOCK(lock, region.m, "pool.region");
      if (error && !region.error) region.error = error;
      if (++region.done == region.nchunks) region.cv_done.notify_all();
    }
    tls_in_region = was_in_region;
  }

  static void run_inline(std::size_t nchunks,
                         const std::function<void(std::size_t)>& fn) {
    const bool was_in_region = tls_in_region;
    tls_in_region = true;
    try {
      for (std::size_t i = 0; i < nchunks; ++i) timed_chunk(fn, i);
    } catch (...) {
      tls_in_region = was_in_region;
      throw;
    }
    tls_in_region = was_in_region;
  }

  std::mutex config_mutex_;   ///< guards threads_ against concurrent resize
  std::mutex submit_mutex_;   ///< one region at a time
  std::mutex mutex_;          ///< guards region_/epoch_/stop_ for workers
  std::condition_variable cv_work_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Region> region_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  std::size_t threads_ = 1;
};

}  // namespace

std::size_t thread_count() { return Pool::instance().threads(); }

void set_thread_count(std::size_t n) { Pool::instance().resize(n); }

bool in_parallel_region() { return tls_in_region; }

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t nchunks = chunk_count(begin, end, g);
  if (tls_in_region || nchunks == 1 || thread_count() == 1) {
    fn(begin, end);  // exact serial path: one contiguous sweep
    return;
  }
  Pool::instance().run(nchunks, [&](std::size_t c) {
    const std::size_t b = begin + c * g;
    const std::size_t e = b + g < end ? b + g : end;
    fn(b, e);
  });
}

std::size_t for_each_chunk(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t nchunks = chunk_count(begin, end, g);
  if (nchunks == 0) return 0;
  Pool::instance().run(nchunks, [&](std::size_t c) {
    const std::size_t b = begin + c * g;
    const std::size_t e = b + g < end ? b + g : end;
    fn(c, b, e);
  });
  return nchunks;
}

}  // namespace gc::parallel
