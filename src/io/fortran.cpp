#include "io/fortran.hpp"

#include <cstring>

namespace gc::io {

FortranWriter::FortranWriter(const std::string& path)
    : out_(path, std::ios::binary) {}

gc::Status FortranWriter::record(std::span<const std::uint8_t> payload) {
  if (!out_) return make_error(ErrorCode::kIoError, "stream not writable");
  const auto marker = static_cast<std::uint32_t>(payload.size());
  // gclint: allow(unchecked-status) std::ostream::write; checked via !out_
  out_.write(reinterpret_cast<const char*>(&marker), sizeof marker);
  out_.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  // gclint: allow(unchecked-status) std::ostream::write; checked via !out_
  out_.write(reinterpret_cast<const char*>(&marker), sizeof marker);
  if (!out_) return make_error(ErrorCode::kIoError, "short write");
  return Status::ok();
}

gc::Status FortranWriter::close() {
  out_.close();  // gclint: allow(unchecked-status) ofstream::close is void
  if (out_.fail()) return make_error(ErrorCode::kIoError, "close failed");
  return Status::ok();
}

FortranReader::FortranReader(const std::string& path)
    : in_(path, std::ios::binary) {}

bool FortranReader::eof() {
  if (!in_) return true;
  return in_.peek() == std::char_traits<char>::eof();
}

gc::Result<std::vector<std::uint8_t>> FortranReader::record() {
  if (!in_) return make_error(ErrorCode::kIoError, "stream not readable");
  std::uint32_t head = 0;
  if (!in_.read(reinterpret_cast<char*>(&head), sizeof head)) {
    return make_error(ErrorCode::kIoError, "missing record header");
  }
  std::vector<std::uint8_t> payload(head);
  if (head > 0 &&
      !in_.read(reinterpret_cast<char*>(payload.data()), head)) {
    return make_error(ErrorCode::kIoError, "truncated record payload");
  }
  std::uint32_t tail = 0;
  if (!in_.read(reinterpret_cast<char*>(&tail), sizeof tail)) {
    return make_error(ErrorCode::kIoError, "missing record trailer");
  }
  if (tail != head) {
    return make_error(ErrorCode::kIoError, "record markers disagree");
  }
  return payload;
}

}  // namespace gc::io
