// Fortran sequential-access binary records.
//
// RAMSES reads its initial conditions from "Fortran binary files" and
// writes snapshots the same way (Section 3): every record is framed by a
// 4-byte little-endian length marker before and after the payload. These
// classes implement exactly that framing so our GRAFIC/RAMSES/GALICS
// stand-ins interoperate through the paper's on-disk contract.
#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace gc::io {

class FortranWriter {
 public:
  explicit FortranWriter(const std::string& path);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  gc::Status record(std::span<const std::uint8_t> payload);

  template <typename T>
  gc::Status record_array(std::span<const T> values) {
    return record(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(values.data()),
        values.size_bytes()));
  }

  template <typename T>
  gc::Status record_scalar(const T& value) {
    return record_array(std::span<const T>(&value, 1));
  }

  gc::Status close();

 private:
  std::ofstream out_;
};

class FortranReader {
 public:
  explicit FortranReader(const std::string& path);

  [[nodiscard]] bool ok() const { return static_cast<bool>(in_); }
  [[nodiscard]] bool eof();

  /// Reads the next record; checks both length markers.
  gc::Result<std::vector<std::uint8_t>> record();

  template <typename T>
  gc::Result<std::vector<T>> record_array() {
    auto raw = record();
    if (!raw.is_ok()) return raw.status();
    if (raw.value().size() % sizeof(T) != 0) {
      return make_error(ErrorCode::kIoError, "record size not a multiple of element size");
    }
    std::vector<T> out(raw.value().size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), raw.value().data(), raw.value().size());
    }
    return out;
  }

  template <typename T>
  gc::Result<T> record_scalar() {
    auto arr = record_array<T>();
    if (!arr.is_ok()) return arr.status();
    if (arr.value().size() != 1) {
      return make_error(ErrorCode::kIoError, "expected a one-element record");
    }
    return arr.value()[0];
  }

 private:
  std::ifstream in_;
};

}  // namespace gc::io
