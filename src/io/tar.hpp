// POSIX ustar archives.
//
// "The results of the simulation are packed into a tarball file if it
// succeeded" (Section 4.2.3) — the ramsesZoom2 OUT file is that tarball.
// Minimal but standards-conforming ustar subset: regular files, path up to
// 100 characters, octal headers, 512-byte blocks, two-zero-block trailer.
// Archives produced here extract with GNU/BSD tar.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace gc::io {

struct TarEntry {
  std::string name;
  std::vector<std::uint8_t> data;
};

class TarWriter {
 public:
  /// Adds a regular file with mode 0644.
  gc::Status add(const std::string& name,
                 const std::vector<std::uint8_t>& data);
  gc::Status add_text(const std::string& name, const std::string& text);
  /// Reads `path` from disk into the archive under `name`.
  gc::Status add_file(const std::string& name, const std::string& path);

  /// Appends the trailer and returns the archive bytes.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  /// finish() + write to disk.
  gc::Status write(const std::string& path);

  [[nodiscard]] std::size_t entry_count() const { return entries_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t entries_ = 0;
  bool finished_ = false;
};

class TarReader {
 public:
  static gc::Result<std::vector<TarEntry>> parse(
      const std::vector<std::uint8_t>& archive);
  static gc::Result<std::vector<TarEntry>> load(const std::string& path);
};

}  // namespace gc::io
