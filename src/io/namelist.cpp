#include "io/namelist.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace gc::io {

namespace {

std::string strip_comment(std::string_view line) {
  // '!' starts a comment unless inside a quoted string.
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\'' || line[i] == '"') quoted = !quoted;
    if (line[i] == '!' && !quoted) return std::string(line.substr(0, i));
  }
  return std::string(line);
}

}  // namespace

std::optional<std::string> NamelistGroup::raw(const std::string& key) const {
  auto it = values_.find(to_lower(key));
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

gc::Result<bool> NamelistGroup::get_bool(const std::string& key) const {
  auto v = raw(key);
  if (!v) return make_error(ErrorCode::kNotFound, "missing key: " + key);
  const std::string s = to_lower(*v);
  if (s == ".true." || s == "t" || s == "true") return true;
  if (s == ".false." || s == "f" || s == "false") return false;
  return make_error(ErrorCode::kInvalidArgument, "not a logical: " + *v);
}

gc::Result<long> NamelistGroup::get_int(const std::string& key) const {
  auto v = raw(key);
  if (!v) return make_error(ErrorCode::kNotFound, "missing key: " + key);
  char* end = nullptr;
  const long value = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') {
    return make_error(ErrorCode::kInvalidArgument, "not an integer: " + *v);
  }
  return value;
}

gc::Result<double> NamelistGroup::get_double(const std::string& key) const {
  auto v = raw(key);
  if (!v) return make_error(ErrorCode::kNotFound, "missing key: " + key);
  // Fortran doubles may use 'd' exponents: 1.5d2.
  std::string s = *v;
  for (char& c : s) {
    if (c == 'd' || c == 'D') c = 'e';
  }
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return make_error(ErrorCode::kInvalidArgument, "not a real: " + *v);
  }
  return value;
}

gc::Result<std::string> NamelistGroup::get_string(
    const std::string& key) const {
  auto v = raw(key);
  if (!v) return make_error(ErrorCode::kNotFound, "missing key: " + key);
  std::string s = *v;
  if (s.size() >= 2 && ((s.front() == '\'' && s.back() == '\'') ||
                        (s.front() == '"' && s.back() == '"'))) {
    s = s.substr(1, s.size() - 2);
  }
  return s;
}

gc::Result<std::vector<double>> NamelistGroup::get_doubles(
    const std::string& key) const {
  auto v = raw(key);
  if (!v) return make_error(ErrorCode::kNotFound, "missing key: " + key);
  std::vector<double> out;
  for (const auto& part : split(*v, ',')) {
    std::string s(trim(part));
    for (char& c : s) {
      if (c == 'd' || c == 'D') c = 'e';
    }
    char* end = nullptr;
    const double value = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0') {
      return make_error(ErrorCode::kInvalidArgument,
                        "not a real list: " + *v);
    }
    out.push_back(value);
  }
  return out;
}

void NamelistGroup::set(const std::string& key, const std::string& value) {
  values_[to_lower(key)] = value;
}

gc::Result<Namelist> Namelist::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return make_error(ErrorCode::kIoError, "cannot open namelist: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

gc::Result<Namelist> Namelist::parse(std::string_view text) {
  Namelist nml;
  NamelistGroup* current = nullptr;
  std::string current_name;
  for (const auto& raw_line : split(text, '\n')) {
    std::string line{trim(strip_comment(raw_line))};
    if (line.empty()) continue;
    if (line[0] == '&') {
      current_name = to_lower(trim(std::string_view(line).substr(1)));
      if (current_name.empty()) {
        return make_error(ErrorCode::kInvalidArgument, "unnamed group");
      }
      current = &nml.group_or_create(current_name);
      continue;
    }
    if (line == "/") {
      current = nullptr;
      continue;
    }
    if (current == nullptr) {
      return make_error(ErrorCode::kInvalidArgument,
                        "assignment outside a group: " + line);
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return make_error(ErrorCode::kInvalidArgument,
                        "expected key=value: " + line);
    }
    const std::string key{trim(std::string_view(line).substr(0, eq))};
    const std::string value{trim(std::string_view(line).substr(eq + 1))};
    current->set(key, value);
  }
  if (current != nullptr) {
    return make_error(ErrorCode::kInvalidArgument,
                      "unterminated group: &" + current_name);
  }
  return nml;
}

const NamelistGroup* Namelist::group(const std::string& name) const {
  auto it = groups_.find(to_lower(name));
  return it != groups_.end() ? &it->second : nullptr;
}

NamelistGroup& Namelist::group_or_create(const std::string& name) {
  return groups_[to_lower(name)];
}

std::vector<std::string> Namelist::group_names() const {
  std::vector<std::string> out;
  out.reserve(groups_.size());
  for (const auto& [name, group] : groups_) {
    (void)group;
    out.push_back(name);
  }
  return out;
}

std::string Namelist::to_string() const {
  std::string out;
  for (const auto& [name, group] : groups_) {
    out += "&" + name + "\n";
    for (const auto& [key, value] : group.values()) {
      out += "  " + key + "=" + value + "\n";
    }
    out += "/\n";
  }
  return out;
}

gc::Status Namelist::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return make_error(ErrorCode::kIoError, "cannot write: " + path);
  out << to_string();
  if (!out) return make_error(ErrorCode::kIoError, "short write: " + path);
  return Status::ok();
}

}  // namespace gc::io
