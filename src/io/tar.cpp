#include "io/tar.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace gc::io {

namespace {

constexpr std::size_t kBlock = 512;

struct UstarHeader {
  char name[100];
  char mode[8];
  char uid[8];
  char gid[8];
  char size[12];
  char mtime[12];
  char chksum[8];
  char typeflag;
  char linkname[100];
  char magic[6];
  char version[2];
  char uname[32];
  char gname[32];
  char devmajor[8];
  char devminor[8];
  char prefix[155];
  char pad[12];
};
static_assert(sizeof(UstarHeader) == kBlock);

void octal(char* field, std::size_t width, std::uint64_t value) {
  // width includes the trailing NUL.
  std::snprintf(field, width, "%0*llo", static_cast<int>(width - 1),
                static_cast<unsigned long long>(value));
}

std::uint32_t checksum(const UstarHeader& h) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&h);
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < kBlock; ++i) {
    // Checksum field counts as spaces.
    const bool in_chksum = i >= offsetof(UstarHeader, chksum) &&
                           i < offsetof(UstarHeader, chksum) + 8;
    sum += in_chksum ? ' ' : bytes[i];
  }
  return sum;
}

}  // namespace

gc::Status TarWriter::add(const std::string& name,
                          const std::vector<std::uint8_t>& data) {
  if (finished_) {
    return make_error(ErrorCode::kFailedPrecondition, "archive finished");
  }
  if (name.empty() || name.size() > 99) {
    return make_error(ErrorCode::kInvalidArgument,
                      "tar entry name must be 1..99 chars: " + name);
  }
  UstarHeader h;
  std::memset(&h, 0, sizeof h);
  std::memcpy(h.name, name.data(), name.size());
  octal(h.mode, sizeof h.mode, 0644);
  octal(h.uid, sizeof h.uid, 0);
  octal(h.gid, sizeof h.gid, 0);
  octal(h.size, sizeof h.size, data.size());
  octal(h.mtime, sizeof h.mtime, 0);
  h.typeflag = '0';
  std::memcpy(h.magic, "ustar", 6);
  std::memcpy(h.version, "00", 2);
  std::memcpy(h.uname, "gridcosmo", 9);
  std::memcpy(h.gname, "gridcosmo", 9);
  // Checksum: 6 octal digits, NUL, space.
  const std::uint32_t sum = checksum(h);
  std::snprintf(h.chksum, sizeof h.chksum, "%06o", sum);
  h.chksum[7] = ' ';

  const auto* hb = reinterpret_cast<const std::uint8_t*>(&h);
  buffer_.insert(buffer_.end(), hb, hb + kBlock);
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  const std::size_t rem = data.size() % kBlock;
  if (rem != 0) buffer_.insert(buffer_.end(), kBlock - rem, 0);
  ++entries_;
  return Status::ok();
}

gc::Status TarWriter::add_text(const std::string& name,
                               const std::string& text) {
  return add(name, std::vector<std::uint8_t>(text.begin(), text.end()));
}

gc::Status TarWriter::add_file(const std::string& name,
                               const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return make_error(ErrorCode::kIoError, "cannot open " + path);
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  return add(name, data);
}

std::vector<std::uint8_t> TarWriter::finish() {
  if (!finished_) {
    buffer_.insert(buffer_.end(), 2 * kBlock, 0);
    finished_ = true;
  }
  return buffer_;
}

gc::Status TarWriter::write(const std::string& path) {
  const auto archive = finish();
  std::ofstream out(path, std::ios::binary);
  if (!out) return make_error(ErrorCode::kIoError, "cannot write " + path);
  out.write(reinterpret_cast<const char*>(archive.data()),
            static_cast<std::streamsize>(archive.size()));
  if (!out) return make_error(ErrorCode::kIoError, "short write " + path);
  return Status::ok();
}

gc::Result<std::vector<TarEntry>> TarReader::parse(
    const std::vector<std::uint8_t>& archive) {
  std::vector<TarEntry> entries;
  std::size_t pos = 0;
  while (pos + kBlock <= archive.size()) {
    const auto* h = reinterpret_cast<const UstarHeader*>(&archive[pos]);
    // Two all-zero blocks terminate the archive; one is enough to stop.
    bool all_zero = true;
    for (std::size_t i = 0; i < kBlock; ++i) {
      if (archive[pos + i] != 0) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) break;
    if (std::memcmp(h->magic, "ustar", 5) != 0) {
      return make_error(ErrorCode::kIoError, "bad ustar magic");
    }
    char size_field[13];
    std::memcpy(size_field, h->size, 12);
    size_field[12] = '\0';
    const auto size =
        static_cast<std::size_t>(std::strtoull(size_field, nullptr, 8));
    pos += kBlock;
    if (pos + size > archive.size()) {
      return make_error(ErrorCode::kIoError, "truncated tar entry");
    }
    if (h->typeflag == '0' || h->typeflag == '\0') {
      TarEntry entry;
      entry.name.assign(h->name, strnlen(h->name, sizeof h->name));
      entry.data.assign(archive.begin() + static_cast<std::ptrdiff_t>(pos),
                        archive.begin() +
                            static_cast<std::ptrdiff_t>(pos + size));
      entries.push_back(std::move(entry));
    }
    pos += (size + kBlock - 1) / kBlock * kBlock;
  }
  return entries;
}

gc::Result<std::vector<TarEntry>> TarReader::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return make_error(ErrorCode::kIoError, "cannot open " + path);
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  return parse(data);
}

}  // namespace gc::io
