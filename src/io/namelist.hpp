// Fortran namelist files (RAMSES's .nml run-parameter format).
//
// The ramsesZoom2 profile's first IN argument is "a file containing
// parameters for RAMSES" — a namelist. Supported subset:
//
//   &RUN_PARAMS
//     cosmo=.true.
//     levelmin=7          ! comment
//     boxlen=100.0
//     zoom_centre=0.5,0.5,0.5
//   /
//
// Groups are case-insensitive; values keep their text form with typed
// accessors (bool .true./.false., ints, doubles, comma arrays, quoted
// strings).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace gc::io {

class NamelistGroup {
 public:
  [[nodiscard]] std::optional<std::string> raw(const std::string& key) const;
  [[nodiscard]] gc::Result<bool> get_bool(const std::string& key) const;
  [[nodiscard]] gc::Result<long> get_int(const std::string& key) const;
  [[nodiscard]] gc::Result<double> get_double(const std::string& key) const;
  [[nodiscard]] gc::Result<std::string> get_string(const std::string& key) const;
  [[nodiscard]] gc::Result<std::vector<double>> get_doubles(
      const std::string& key) const;

  void set(const std::string& key, const std::string& value);
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] const std::map<std::string, std::string>& values() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;  // lower-cased keys
};

class Namelist {
 public:
  static gc::Result<Namelist> load(const std::string& path);
  static gc::Result<Namelist> parse(std::string_view text);

  [[nodiscard]] const NamelistGroup* group(const std::string& name) const;
  [[nodiscard]] NamelistGroup& group_or_create(const std::string& name);
  [[nodiscard]] std::vector<std::string> group_names() const;

  /// Writes back in namelist syntax.
  [[nodiscard]] std::string to_string() const;
  gc::Status save(const std::string& path) const;

 private:
  std::map<std::string, NamelistGroup> groups_;  // lower-cased names
};

}  // namespace gc::io
