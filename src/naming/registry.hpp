// Name service (the omniORB naming-service substitute).
//
// DIET components find each other by name: a client's configuration file
// names a Master Agent ("MA1"), an LA's configuration names its parent,
// and so on. The Registry maps those names to Env endpoints. In a real
// deployment this is a distinct CORBA service; here it is a synchronous
// in-process directory (name resolution happens at deployment time, not on
// the request path, so it does not perturb the measured finding time).
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "net/message.hpp"

namespace gc::naming {

class Registry {
 public:
  /// Binds a name to an endpoint. Rebinding an existing name fails (names
  /// are unique per deployment, as in the CORBA naming service).
  gc::Status bind(const std::string& name, net::Endpoint endpoint);

  /// Replaces any existing binding.
  void rebind(const std::string& name, net::Endpoint endpoint);

  gc::Status unbind(const std::string& name);

  /// Resolves a name; kNotFound if absent.
  [[nodiscard]] gc::Result<net::Endpoint> resolve(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> list() const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, net::Endpoint> names_;
};

}  // namespace gc::naming
