#include "naming/registry.hpp"

#include <algorithm>

namespace gc::naming {

gc::Status Registry::bind(const std::string& name, net::Endpoint endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = names_.emplace(name, endpoint);
  (void)it;
  if (!inserted) {
    return make_error(ErrorCode::kAlreadyExists, "name already bound: " + name);
  }
  return Status::ok();
}

void Registry::rebind(const std::string& name, net::Endpoint endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  names_[name] = endpoint;
}

gc::Status Registry::unbind(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (names_.erase(name) == 0) {
    return make_error(ErrorCode::kNotFound, "name not bound: " + name);
  }
  return Status::ok();
}

gc::Result<net::Endpoint> Registry::resolve(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = names_.find(name);
  if (it == names_.end()) {
    return make_error(ErrorCode::kNotFound, "name not bound: " + name);
  }
  return it->second;
}

std::vector<std::string> Registry::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(names_.size());
  for (const auto& [name, ep] : names_) {
    (void)ep;
    out.push_back(name);
  }
  // The backing map is unordered; callers print and compare this list, so
  // hand it out in a hash-independent order.
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return names_.size();
}

}  // namespace gc::naming
