#include "math/integrate.hpp"

#include "common/log.hpp"

namespace gc::math {

double simpson(const std::function<double(double)>& f, double a, double b,
               int n) {
  GC_CHECK(n > 0);
  if (n % 2 != 0) ++n;
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    sum += f(a + h * i) * (i % 2 == 0 ? 2.0 : 4.0);
  }
  return sum * h / 3.0;
}

double rk4(const std::function<double(double, double)>& f, double x0,
           double y0, double x1, int n) {
  GC_CHECK(n > 0);
  const double h = (x1 - x0) / n;
  double x = x0;
  double y = y0;
  for (int i = 0; i < n; ++i) {
    const double k1 = f(x, y);
    const double k2 = f(x + 0.5 * h, y + 0.5 * h * k1);
    const double k3 = f(x + 0.5 * h, y + 0.5 * h * k2);
    const double k4 = f(x + h, y + h * k3);
    y += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    x += h;
  }
  return y;
}

Vec2 rk4_2(const std::function<Vec2(double, const Vec2&)>& f, double x0,
           Vec2 y0, double x1, int n) {
  GC_CHECK(n > 0);
  const double h = (x1 - x0) / n;
  double x = x0;
  Vec2 y = y0;
  auto axpy = [](const Vec2& base, double s, const Vec2& d) {
    return Vec2{base.a + s * d.a, base.b + s * d.b};
  };
  for (int i = 0; i < n; ++i) {
    const Vec2 k1 = f(x, y);
    const Vec2 k2 = f(x + 0.5 * h, axpy(y, 0.5 * h, k1));
    const Vec2 k3 = f(x + 0.5 * h, axpy(y, 0.5 * h, k2));
    const Vec2 k4 = f(x + h, axpy(y, h, k3));
    y.a += h / 6.0 * (k1.a + 2.0 * k2.a + 2.0 * k3.a + k4.a);
    y.b += h / 6.0 * (k1.b + 2.0 * k2.b + 2.0 * k3.b + k4.b);
    x += h;
  }
  return y;
}

}  // namespace gc::math
