// Radix-2 complex FFT, 1D and 3D.
//
// The PM gravity solver and the GRAFIC initial-conditions generator both
// need 3D transforms on power-of-two grids. This is a classic iterative
// Cooley-Tukey implementation: bit-reversal permutation + butterfly
// passes, O(N log N), no external dependency.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace gc::math {

using Complex = std::complex<double>;

/// True iff n is a power of two (and > 0).
constexpr bool is_pow2(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

/// In-place 1D FFT. `inverse` applies the conjugate transform and divides
/// by N, so fft(fft(x), inverse=true) == x up to rounding.
void fft(std::vector<Complex>& data, bool inverse);

/// In-place 1D FFT on a strided view (used by the 3D transform).
void fft_strided(Complex* data, std::size_t n, std::size_t stride,
                 bool inverse);

/// In-place 3D FFT on an n0*n1*n2 row-major array (index = (i0*n1+i1)*n2+i2).
/// All dimensions must be powers of two.
void fft3(std::vector<Complex>& data, std::size_t n0, std::size_t n1,
          std::size_t n2, bool inverse);

/// Convenience: cube transform (n^3 elements).
inline void fft3(std::vector<Complex>& data, std::size_t n, bool inverse) {
  fft3(data, n, n, n, inverse);
}

/// Frequency (in cycles per box) of index k on an n-point grid: the usual
/// wrap-around convention, k <= n/2 ? k : k - n.
constexpr long freq_index(std::size_t k, std::size_t n) {
  return k <= n / 2 ? static_cast<long>(k)
                    : static_cast<long>(k) - static_cast<long>(n);
}

}  // namespace gc::math
