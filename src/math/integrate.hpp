// Small numeric helpers: adaptive-free fixed-step quadrature and RK4 ODE
// integration, enough for the Friedmann and growth-factor integrals.
#pragma once

#include <functional>

namespace gc::math {

/// Composite Simpson quadrature of f on [a, b] with n (even) intervals.
double simpson(const std::function<double(double)>& f, double a, double b,
               int n = 256);

/// Classic fixed-step RK4 for a scalar ODE y' = f(x, y) from (x0, y0) to
/// x1 in n steps; returns y(x1).
double rk4(const std::function<double(double, double)>& f, double x0,
           double y0, double x1, int n = 512);

/// RK4 for a 2-component system (used for the linear growth ODE).
struct Vec2 {
  double a, b;
};
Vec2 rk4_2(const std::function<Vec2(double, const Vec2&)>& f, double x0,
           Vec2 y0, double x1, int n = 512);

}  // namespace gc::math
