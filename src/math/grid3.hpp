// Dense 3D grid with periodic indexing.
//
// Shared by the IC generator (density/displacement fields), the PM solver
// (mass and potential meshes) and the halo finder (linked cells).
#pragma once

#include <cstddef>
#include <vector>

#include "common/log.hpp"

namespace gc::math {

template <typename T>
class Grid3 {
 public:
  Grid3() = default;
  explicit Grid3(std::size_t n, T fill = T{}) : n_(n), data_(n * n * n, fill) {}

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] T& at(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(i * n_ + j) * n_ + k];
  }
  [[nodiscard]] const T& at(std::size_t i, std::size_t j,
                            std::size_t k) const {
    return data_[(i * n_ + j) * n_ + k];
  }

  /// Periodic (wrapping) access with possibly negative indexes.
  [[nodiscard]] T& atp(long i, long j, long k) {
    return data_[index_p(i, j, k)];
  }
  [[nodiscard]] const T& atp(long i, long j, long k) const {
    return data_[index_p(i, j, k)];
  }

  [[nodiscard]] std::size_t index_p(long i, long j, long k) const {
    const long n = static_cast<long>(n_);
    const auto w = [n](long x) { return static_cast<std::size_t>(((x % n) + n) % n); };
    return (w(i) * n_ + w(j)) * n_ + w(k);
  }

  [[nodiscard]] std::vector<T>& raw() { return data_; }
  [[nodiscard]] const std::vector<T>& raw() const { return data_; }

  void fill(T value) { data_.assign(data_.size(), value); }

  [[nodiscard]] T sum() const {
    T total{};
    for (const T& v : data_) total += v;
    return total;
  }

 private:
  std::size_t n_ = 0;
  std::vector<T> data_;
};

}  // namespace gc::math
