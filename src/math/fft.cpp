#include "math/fft.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "common/log.hpp"
#include "parallel/pool.hpp"

namespace gc::math {

namespace {

/// Twiddle table for size n: tw[j] = exp(-2*pi*i*j/n), j < n/2. Computed
/// once per FFT size (direct cos/sin per entry, no incremental recurrence
/// accumulating rounding error) and shared by every transform of that size,
/// including concurrent per-pencil transforms on the pool.
class TwiddleCache {
 public:
  static const std::vector<Complex>& get(std::size_t n) {
    static TwiddleCache cache;
    {
      std::shared_lock<std::shared_mutex> lock(cache.mutex_);
      if (auto it = cache.tables_.find(n); it != cache.tables_.end()) {
        return *it->second;
      }
    }
    std::unique_lock<std::shared_mutex> lock(cache.mutex_);
    auto& slot = cache.tables_[n];
    if (!slot) {
      auto table = std::make_unique<std::vector<Complex>>(
          std::max<std::size_t>(n / 2, 1));
      for (std::size_t j = 0; j < table->size(); ++j) {
        const double angle =
            -2.0 * M_PI * static_cast<double>(j) / static_cast<double>(n);
        (*table)[j] = Complex(std::cos(angle), std::sin(angle));
      }
      slot = std::move(table);
    }
    return *slot;
  }

 private:
  std::shared_mutex mutex_;
  std::map<std::size_t, std::unique_ptr<std::vector<Complex>>> tables_;
};

/// Core butterfly passes on a strided sequence; caller has already done
/// the bit-reversal permutation. `tw` is the size-n twiddle table.
void butterflies(Complex* data, std::size_t n, std::size_t stride,
                 bool inverse, const std::vector<Complex>& tw) {
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t step = n / len;  // table stride for this pass
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex wf = tw[j * step];
        const Complex w = inverse ? std::conj(wf) : wf;
        Complex& a = data[(i + j) * stride];
        Complex& b = data[(i + j + len / 2) * stride];
        const Complex u = a;
        const Complex v = b * w;
        a = u + v;
        b = u - v;
      }
    }
  }
}

void bit_reverse(Complex* data, std::size_t n, std::size_t stride) {
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i * stride], data[j * stride]);
  }
}

/// Scheduling grain for the pencil loops: enough lines per chunk that the
/// dispatch cost is negligible next to the O(n log n) line transforms.
std::size_t pencil_grain(std::size_t line_length) {
  return std::max<std::size_t>(1, 2048 / std::max<std::size_t>(line_length, 1));
}

}  // namespace

void fft_strided(Complex* data, std::size_t n, std::size_t stride,
                 bool inverse) {
  GC_CHECK_MSG(is_pow2(n), "FFT size must be a power of two");
  const std::vector<Complex>& tw = TwiddleCache::get(n);
  bit_reverse(data, n, stride);
  butterflies(data, n, stride, inverse, tw);
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) data[i * stride] *= scale;
  }
}

void fft(std::vector<Complex>& data, bool inverse) {
  fft_strided(data.data(), data.size(), 1, inverse);
}

void fft3(std::vector<Complex>& data, std::size_t n0, std::size_t n1,
          std::size_t n2, bool inverse) {
  GC_CHECK(data.size() == n0 * n1 * n2);
  GC_CHECK_MSG(is_pow2(n0) && is_pow2(n1) && is_pow2(n2),
               "FFT dims must be powers of two");
  // Each pencil (1D line) is independent, so every axis is an
  // embarrassingly parallel sweep: per-line arithmetic is identical at any
  // thread count. Warm the twiddle caches before fanning out so workers
  // only take the shared (read) lock.
  TwiddleCache::get(n0);
  TwiddleCache::get(n1);
  TwiddleCache::get(n2);
  Complex* d = data.data();

  // Transform along axis 2 (contiguous rows); one line per (i0, i1).
  parallel::parallel_for(0, n0 * n1, pencil_grain(n2),
               [=](std::size_t begin, std::size_t end) {
                 for (std::size_t line = begin; line < end; ++line) {
                   fft_strided(d + line * n2, n2, 1, inverse);
                 }
               });
  // Axis 1 (stride n2); one line per (i0, i2).
  parallel::parallel_for(0, n0 * n2, pencil_grain(n1),
               [=](std::size_t begin, std::size_t end) {
                 for (std::size_t line = begin; line < end; ++line) {
                   const std::size_t i0 = line / n2;
                   const std::size_t i2 = line % n2;
                   fft_strided(d + i0 * n1 * n2 + i2, n1, n2, inverse);
                 }
               });
  // Axis 0 (stride n1*n2); one line per (i1, i2).
  parallel::parallel_for(0, n1 * n2, pencil_grain(n0),
               [=](std::size_t begin, std::size_t end) {
                 for (std::size_t line = begin; line < end; ++line) {
                   fft_strided(d + line, n0, n1 * n2, inverse);
                 }
               });
}

}  // namespace gc::math
