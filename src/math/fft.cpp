#include "math/fft.hpp"

#include <cmath>

#include "common/log.hpp"

namespace gc::math {

namespace {

/// Core butterfly passes on a strided sequence; caller has already done
/// the bit-reversal permutation.
void butterflies(Complex* data, std::size_t n, std::size_t stride,
                 bool inverse) {
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        Complex& a = data[(i + j) * stride];
        Complex& b = data[(i + j + len / 2) * stride];
        const Complex u = a;
        const Complex v = b * w;
        a = u + v;
        b = u - v;
        w *= wlen;
      }
    }
  }
}

void bit_reverse(Complex* data, std::size_t n, std::size_t stride) {
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i * stride], data[j * stride]);
  }
}

}  // namespace

void fft_strided(Complex* data, std::size_t n, std::size_t stride,
                 bool inverse) {
  GC_CHECK_MSG(is_pow2(n), "FFT size must be a power of two");
  bit_reverse(data, n, stride);
  butterflies(data, n, stride, inverse);
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) data[i * stride] *= scale;
  }
}

void fft(std::vector<Complex>& data, bool inverse) {
  fft_strided(data.data(), data.size(), 1, inverse);
}

void fft3(std::vector<Complex>& data, std::size_t n0, std::size_t n1,
          std::size_t n2, bool inverse) {
  GC_CHECK(data.size() == n0 * n1 * n2);
  GC_CHECK_MSG(is_pow2(n0) && is_pow2(n1) && is_pow2(n2),
               "FFT dims must be powers of two");
  // Transform along axis 2 (contiguous rows).
  for (std::size_t i0 = 0; i0 < n0; ++i0) {
    for (std::size_t i1 = 0; i1 < n1; ++i1) {
      fft_strided(&data[(i0 * n1 + i1) * n2], n2, 1, inverse);
    }
  }
  // Axis 1 (stride n2).
  for (std::size_t i0 = 0; i0 < n0; ++i0) {
    for (std::size_t i2 = 0; i2 < n2; ++i2) {
      fft_strided(&data[i0 * n1 * n2 + i2], n1, n2, inverse);
    }
  }
  // Axis 0 (stride n1*n2).
  for (std::size_t i1 = 0; i1 < n1; ++i1) {
    for (std::size_t i2 = 0; i2 < n2; ++i2) {
      fft_strided(&data[i1 * n2 + i2], n0, n1 * n2, inverse);
    }
  }
}

}  // namespace gc::math
