// Particle-Mesh gravity and the cosmological leapfrog.
//
// Unit system (classic PM code units, cf. Klypin & Holtzman 1997):
//   length   : box size L            -> positions x in [0, 1)
//   time     : 1/H0                  -> expansion factor a is the clock
//   momentum : p = a^2 dx/dt         -> in units of L*H0
// With these choices (p = a^2 dx/dt obeys dp/dt = -grad phi),
//   Poisson     :  lap(phi) = (3/2) Omega_m delta / a
//   kick        :  dp/da = -grad(phi) / (a E(a))
//   drift       :  dx/da =  p         / (a^3 E(a))
// and the linear growing mode of delta follows D(a) exactly — which is
// what test_ramses verifies against the cosmo library.
//
// Mass assignment and force interpolation are both Cloud-In-Cell (the
// same kernel on both sides, so momentum is conserved and self-forces
// vanish); the Poisson solve is spectral with the -1/k^2 Green function.
#pragma once

#include <array>

#include "cosmo/cosmology.hpp"
#include "math/grid3.hpp"
#include "ramses/particles.hpp"

namespace gc::ramses {

/// CIC-deposits particle masses onto an n^3 periodic grid; the result is
/// the overdensity field delta = rho/rho_mean - 1 when the set covers the
/// whole box with total mass ~1.
math::Grid3<double> cic_deposit(const ParticleSet& particles, int n);

/// Solves lap(phi) = rhs_factor * delta spectrally; returns phi.
math::Grid3<double> solve_poisson(const math::Grid3<double>& delta,
                                  double rhs_factor);

/// Central-difference acceleration -grad(phi), CIC-interpolated to each
/// particle. Returns one array per axis, in phi's units per box length.
std::array<std::vector<double>, 3> interpolate_forces(
    const math::Grid3<double>& phi, const ParticleSet& particles);

class PmSolver {
 public:
  struct Options {
    int grid_n = 64;          ///< mesh resolution
    double omega_m = 0.27;
  };

  PmSolver(const cosmo::Cosmology& cosmology, const Options& options)
      : cosmology_(cosmology), options_(options) {}

  /// One kick-drift-kick leapfrog step from a to a + da (in place).
  void step(ParticleSet& particles, double a, double da) const;

  /// Computes accelerations at expansion factor a (exposed for the
  /// parallel driver, which exchanges particles between kicks).
  std::array<std::vector<double>, 3> accelerations(
      const ParticleSet& particles, double a) const;

  [[nodiscard]] const Options& options() const { return options_; }

  /// Leapfrog sub-operations, exposed for the parallel driver (which
  /// interleaves them with mesh reductions and particle exchanges).
  void kick(ParticleSet& particles,
            const std::array<std::vector<double>, 3>& acc, double a,
            double da) const;
  void drift(ParticleSet& particles, double a, double da) const;

 private:
  const cosmo::Cosmology& cosmology_;
  Options options_;
};

/// Converts a peculiar velocity in km/s to code momentum p = a^2 dx/dt
/// for a box of box_mpc (Mpc/h): p = a * v / (100 * box_mpc).
double momentum_from_kms(double v_kms, double a, double box_mpc);
double kms_from_momentum(double p, double a, double box_mpc);

}  // namespace gc::ramses
