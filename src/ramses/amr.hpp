// Adaptive Mesh Refinement octree.
//
// RAMSES couples its N-body solver to "a finite volume Euler solver,
// based on the Adaptive Mesh Refinement technics" (Section 3). This tree
// implements the AMR side of that design: cells refine where the particle
// count exceeds m_refine, from levelmin down to levelmax, giving the
// quasi-Lagrangian mesh RAMSES uses. The dark-matter-only pipeline in this
// repository uses the tree for refinement statistics, density estimation
// and the zoom region bookkeeping (the gravity solve itself is spectral on
// the base mesh — see DESIGN.md, Known limitations).
#pragma once

#include <cstdint>
#include <vector>

#include "ramses/particles.hpp"

namespace gc::ramses {

struct AmrOptions {
  int levelmin = 3;   ///< the base mesh is 2^levelmin per dimension
  int levelmax = 9;   ///< finest allowed level
  int m_refine = 8;   ///< refine a cell holding more than this many particles
};

class AmrTree {
 public:
  struct Cell {
    double cx, cy, cz;       ///< centre, box units
    double half;             ///< half-size, box units
    std::int32_t level;
    std::int32_t first_child = -1;  ///< index of child 0 (children are
                                    ///< contiguous); -1 for leaves
    std::uint32_t count = 0;        ///< particles inside
    double mass = 0.0;              ///< mass inside
  };

  AmrTree(const ParticleSet& particles, const AmrOptions& options);

  [[nodiscard]] const std::vector<Cell>& cells() const { return cells_; }
  [[nodiscard]] const AmrOptions& options() const { return options_; }

  /// Number of cells per level (index = level).
  [[nodiscard]] std::vector<std::size_t> cells_per_level() const;
  [[nodiscard]] std::size_t leaf_count() const;
  [[nodiscard]] int max_level() const;

  /// Index of the leaf containing a position (box units).
  [[nodiscard]] std::size_t leaf_at(double x, double y, double z) const;

  /// Local density estimate (mean box density = 1) at a position: leaf
  /// mass / leaf volume.
  [[nodiscard]] double density_at(double x, double y, double z) const;

  /// Invariants: each internal cell's count/mass equals the sum over its
  /// children; leaf levels within bounds. Used by property tests.
  [[nodiscard]] bool check_invariants() const;

 private:
  void build(const ParticleSet& particles);
  void refine(std::size_t cell_index, std::vector<std::uint32_t> members,
              const ParticleSet& particles);

  AmrOptions options_;
  std::vector<Cell> cells_;
  std::size_t root_grid_n_;  ///< 2^levelmin
};

}  // namespace gc::ramses
