#include "ramses/pm.hpp"

#include <cmath>

#include "common/log.hpp"
#include "math/fft.hpp"
#include "parallel/pool.hpp"

namespace gc::ramses {

namespace {

/// Particles per CIC deposit chunk. The chunk decomposition depends only on
/// the particle count — never on the thread count — so the chunk-ordered
/// reduction below gives byte-identical grids for any GC_THREADS.
constexpr std::size_t kDepositGrain = 16384;

/// Grain for the embarrassingly parallel per-particle sweeps (disjoint
/// writes, so chunking cannot affect the result).
constexpr std::size_t kParticleGrain = 8192;

}  // namespace

math::Grid3<double> cic_deposit(const ParticleSet& particles, int n) {
  GC_CHECK(n > 0);
  const auto nu = static_cast<std::size_t>(n);
  math::Grid3<double> delta(nu, 0.0);
  const double nd = static_cast<double>(n);
  const double cell_mass_unit = nd * nd * nd;  // delta normalization

  const std::size_t npart = particles.size();
  const std::size_t nchunks =
      parallel::chunk_count(0, npart, kDepositGrain);

  // Scatter each fixed particle chunk into its own private grid, then
  // reduce the grids cell-by-cell in ascending chunk order. Within a chunk
  // particles deposit in index order, so the full floating-point reduction
  // tree is a function of the particle count alone.
  auto deposit_range = [&](math::Grid3<double>& grid, std::size_t begin,
                           std::size_t end) {
    for (std::size_t p = begin; p < end; ++p) {
      // Cell-centred CIC: the particle shares mass with the 8 nearest cell
      // centres.
      const double gx = particles.x[p] * nd - 0.5;
      const double gy = particles.y[p] * nd - 0.5;
      const double gz = particles.z[p] * nd - 0.5;
      const long i0 = static_cast<long>(std::floor(gx));
      const long j0 = static_cast<long>(std::floor(gy));
      const long k0 = static_cast<long>(std::floor(gz));
      const double fx = gx - static_cast<double>(i0);
      const double fy = gy - static_cast<double>(j0);
      const double fz = gz - static_cast<double>(k0);
      const double m = particles.mass[p] * cell_mass_unit;
      for (int di = 0; di <= 1; ++di) {
        const double wx = di ? fx : 1.0 - fx;
        for (int dj = 0; dj <= 1; ++dj) {
          const double wy = dj ? fy : 1.0 - fy;
          for (int dk = 0; dk <= 1; ++dk) {
            const double wz = dk ? fz : 1.0 - fz;
            grid.atp(i0 + di, j0 + dj, k0 + dk) += m * wx * wy * wz;
          }
        }
      }
    }
  };

  if (nchunks <= 1) {
    deposit_range(delta, 0, npart);
  } else {
    std::vector<math::Grid3<double>> partials(nchunks,
                                              math::Grid3<double>(nu, 0.0));
    parallel::for_each_chunk(
        0, npart, kDepositGrain,
        [&](std::size_t c, std::size_t begin, std::size_t end) {
          deposit_range(partials[c], begin, end);
        });
    // Cell-parallel, chunk-ordered reduction: every cell sums its chunk
    // contributions in the same (ascending) order at any thread count.
    double* out = delta.raw().data();
    parallel::parallel_for(
        0, delta.size(), kParticleGrain,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t c = 0; c < nchunks; ++c) {
            const double* part = partials[c].raw().data();
            for (std::size_t i = begin; i < end; ++i) out[i] += part[i];
          }
        });
  }

  // rho/rho_mean - 1 (total mass 1 spread over n^3 cells gives mean 1).
  double* out = delta.raw().data();
  parallel::parallel_for(0, delta.size(), kParticleGrain,
                         [out](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             out[i] -= 1.0;
                           }
                         });
  return delta;
}

math::Grid3<double> solve_poisson(const math::Grid3<double>& delta,
                                  double rhs_factor) {
  const std::size_t n = delta.n();
  std::vector<math::Complex> field(n * n * n);
  const double* din = delta.raw().data();
  math::Complex* f = field.data();
  parallel::parallel_for(0, field.size(), kParticleGrain,
                         [=](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             f[i] = math::Complex(din[i], 0.0);
                           }
                         });
  math::fft3(field, n, false);

  // Discrete spectral Green function: phi_k = -rhs / k_eff^2 with the
  // exact continuum k; k=0 mode (mean) is gauge and set to zero. The
  // k-components are hoisted out of the inner loops (kx/ky are invariant
  // in the j/l loops) and each i-plane is independent.
  const double two_pi = 2.0 * M_PI;
  std::vector<double> k1d(n);
  for (std::size_t i = 0; i < n; ++i) {
    k1d[i] = two_pi * static_cast<double>(math::freq_index(i, n));
  }
  parallel::parallel_for(
      0, n, 1, [&, f](std::size_t i_begin, std::size_t i_end) {
        for (std::size_t i = i_begin; i < i_end; ++i) {
          const double kx2 = k1d[i] * k1d[i];
          for (std::size_t j = 0; j < n; ++j) {
            const double kxy2 = kx2 + k1d[j] * k1d[j];
            math::Complex* row = f + (i * n + j) * n;
            for (std::size_t l = 0; l < n; ++l) {
              const double k2 = kxy2 + k1d[l] * k1d[l];
              row[l] *= k2 > 0.0 ? -rhs_factor / k2 : 0.0;
            }
          }
        }
      });
  math::fft3(field, n, true);

  math::Grid3<double> phi(n);
  double* pout = phi.raw().data();
  parallel::parallel_for(0, field.size(), kParticleGrain,
                         [=](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             pout[i] = f[i].real();
                           }
                         });
  return phi;
}

std::array<std::vector<double>, 3> interpolate_forces(
    const math::Grid3<double>& phi, const ParticleSet& particles) {
  const auto n = static_cast<long>(phi.n());
  const double nd = static_cast<double>(n);
  const double inv_2h = nd / 2.0;  // central difference over 2 cells

  std::array<std::vector<double>, 3> acc;
  for (auto& a : acc) a.assign(particles.size(), 0.0);

  // Pure gather: reads phi, writes acc[axis][p] — disjoint per particle.
  parallel::parallel_for(
      0, particles.size(), kParticleGrain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t p = begin; p < end; ++p) {
          const double gx = particles.x[p] * nd - 0.5;
          const double gy = particles.y[p] * nd - 0.5;
          const double gz = particles.z[p] * nd - 0.5;
          const long i0 = static_cast<long>(std::floor(gx));
          const long j0 = static_cast<long>(std::floor(gy));
          const long k0 = static_cast<long>(std::floor(gz));
          const double fx = gx - static_cast<double>(i0);
          const double fy = gy - static_cast<double>(j0);
          const double fz = gz - static_cast<double>(k0);
          for (int di = 0; di <= 1; ++di) {
            const double wx = di ? fx : 1.0 - fx;
            for (int dj = 0; dj <= 1; ++dj) {
              const double wy = dj ? fy : 1.0 - fy;
              for (int dk = 0; dk <= 1; ++dk) {
                const double wz = dk ? fz : 1.0 - fz;
                const double w = wx * wy * wz;
                const long i = i0 + di;
                const long j = j0 + dj;
                const long k = k0 + dk;
                // -grad(phi), central differences on the periodic mesh.
                acc[0][p] -=
                    w * (phi.atp(i + 1, j, k) - phi.atp(i - 1, j, k)) * inv_2h;
                acc[1][p] -=
                    w * (phi.atp(i, j + 1, k) - phi.atp(i, j - 1, k)) * inv_2h;
                acc[2][p] -=
                    w * (phi.atp(i, j, k + 1) - phi.atp(i, j, k - 1)) * inv_2h;
              }
            }
          }
        }
      });
  return acc;
}

std::array<std::vector<double>, 3> PmSolver::accelerations(
    const ParticleSet& particles, double a) const {
  const math::Grid3<double> delta = cic_deposit(particles, options_.grid_n);
  const double rhs = 1.5 * options_.omega_m / a;
  const math::Grid3<double> phi = solve_poisson(delta, rhs);
  return interpolate_forces(phi, particles);
}

void PmSolver::kick(ParticleSet& particles,
                    const std::array<std::vector<double>, 3>& acc, double a,
                    double da) const {
  // p = a^2 dx/dt obeys dp/dt = -grad(phi), so dp/da = -grad(phi)/(a E).
  const double factor = da / (a * cosmology_.efunc(a));
  parallel::parallel_for(0, particles.size(), kParticleGrain,
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t p = begin; p < end; ++p) {
                             particles.px[p] += acc[0][p] * factor;
                             particles.py[p] += acc[1][p] * factor;
                             particles.pz[p] += acc[2][p] * factor;
                           }
                         });
}

void PmSolver::drift(ParticleSet& particles, double a, double da) const {
  const double factor = da / (a * a * a * cosmology_.efunc(a));
  parallel::parallel_for(0, particles.size(), kParticleGrain,
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t p = begin; p < end; ++p) {
                             particles.x[p] += particles.px[p] * factor;
                             particles.y[p] += particles.py[p] * factor;
                             particles.z[p] += particles.pz[p] * factor;
                           }
                         });
  particles.wrap_positions();
}

void PmSolver::step(ParticleSet& particles, double a, double da) const {
  // KDK: half kick at a, full drift at midpoint, half kick at a + da.
  auto acc = accelerations(particles, a);
  kick(particles, acc, a, 0.5 * da);
  drift(particles, a + 0.5 * da, da);
  acc = accelerations(particles, a + da);
  kick(particles, acc, a + da, 0.5 * da);
}

double momentum_from_kms(double v_kms, double a, double box_mpc) {
  return a * v_kms / (100.0 * box_mpc);
}

double kms_from_momentum(double p, double a, double box_mpc) {
  return p * 100.0 * box_mpc / a;
}

}  // namespace gc::ramses
