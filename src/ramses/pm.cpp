#include "ramses/pm.hpp"

#include <cmath>

#include "common/log.hpp"
#include "math/fft.hpp"

namespace gc::ramses {

math::Grid3<double> cic_deposit(const ParticleSet& particles, int n) {
  GC_CHECK(n > 0);
  math::Grid3<double> delta(static_cast<std::size_t>(n), 0.0);
  const double nd = static_cast<double>(n);
  const double cell_mass_unit = nd * nd * nd;  // delta normalization

  for (std::size_t p = 0; p < particles.size(); ++p) {
    // Cell-centred CIC: the particle shares mass with the 8 nearest cell
    // centres.
    const double gx = particles.x[p] * nd - 0.5;
    const double gy = particles.y[p] * nd - 0.5;
    const double gz = particles.z[p] * nd - 0.5;
    const long i0 = static_cast<long>(std::floor(gx));
    const long j0 = static_cast<long>(std::floor(gy));
    const long k0 = static_cast<long>(std::floor(gz));
    const double fx = gx - static_cast<double>(i0);
    const double fy = gy - static_cast<double>(j0);
    const double fz = gz - static_cast<double>(k0);
    const double m = particles.mass[p] * cell_mass_unit;
    for (int di = 0; di <= 1; ++di) {
      const double wx = di ? fx : 1.0 - fx;
      for (int dj = 0; dj <= 1; ++dj) {
        const double wy = dj ? fy : 1.0 - fy;
        for (int dk = 0; dk <= 1; ++dk) {
          const double wz = dk ? fz : 1.0 - fz;
          delta.atp(i0 + di, j0 + dj, k0 + dk) += m * wx * wy * wz;
        }
      }
    }
  }
  // rho/rho_mean - 1 (total mass 1 spread over n^3 cells gives mean 1).
  for (auto& v : delta.raw()) v -= 1.0;
  return delta;
}

math::Grid3<double> solve_poisson(const math::Grid3<double>& delta,
                                  double rhs_factor) {
  const std::size_t n = delta.n();
  std::vector<math::Complex> field(n * n * n);
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = math::Complex(delta.raw()[i], 0.0);
  }
  math::fft3(field, n, false);

  // Discrete spectral Green function: phi_k = -rhs / k_eff^2 with the
  // exact continuum k; k=0 mode (mean) is gauge and set to zero.
  const double two_pi = 2.0 * M_PI;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t l = 0; l < n; ++l) {
        const double kx = two_pi * static_cast<double>(math::freq_index(i, n));
        const double ky = two_pi * static_cast<double>(math::freq_index(j, n));
        const double kz = two_pi * static_cast<double>(math::freq_index(l, n));
        const double k2 = kx * kx + ky * ky + kz * kz;
        const std::size_t idx = (i * n + j) * n + l;
        field[idx] *= k2 > 0.0 ? -rhs_factor / k2 : 0.0;
      }
    }
  }
  math::fft3(field, n, true);

  math::Grid3<double> phi(n);
  for (std::size_t i = 0; i < field.size(); ++i) {
    phi.raw()[i] = field[i].real();
  }
  return phi;
}

std::array<std::vector<double>, 3> interpolate_forces(
    const math::Grid3<double>& phi, const ParticleSet& particles) {
  const auto n = static_cast<long>(phi.n());
  const double nd = static_cast<double>(n);
  const double inv_2h = nd / 2.0;  // central difference over 2 cells

  std::array<std::vector<double>, 3> acc;
  for (auto& a : acc) a.assign(particles.size(), 0.0);

  for (std::size_t p = 0; p < particles.size(); ++p) {
    const double gx = particles.x[p] * nd - 0.5;
    const double gy = particles.y[p] * nd - 0.5;
    const double gz = particles.z[p] * nd - 0.5;
    const long i0 = static_cast<long>(std::floor(gx));
    const long j0 = static_cast<long>(std::floor(gy));
    const long k0 = static_cast<long>(std::floor(gz));
    const double fx = gx - static_cast<double>(i0);
    const double fy = gy - static_cast<double>(j0);
    const double fz = gz - static_cast<double>(k0);
    for (int di = 0; di <= 1; ++di) {
      const double wx = di ? fx : 1.0 - fx;
      for (int dj = 0; dj <= 1; ++dj) {
        const double wy = dj ? fy : 1.0 - fy;
        for (int dk = 0; dk <= 1; ++dk) {
          const double wz = dk ? fz : 1.0 - fz;
          const double w = wx * wy * wz;
          const long i = i0 + di;
          const long j = j0 + dj;
          const long k = k0 + dk;
          // -grad(phi), central differences on the periodic mesh.
          acc[0][p] -= w * (phi.atp(i + 1, j, k) - phi.atp(i - 1, j, k)) * inv_2h;
          acc[1][p] -= w * (phi.atp(i, j + 1, k) - phi.atp(i, j - 1, k)) * inv_2h;
          acc[2][p] -= w * (phi.atp(i, j, k + 1) - phi.atp(i, j, k - 1)) * inv_2h;
        }
      }
    }
  }
  return acc;
}

std::array<std::vector<double>, 3> PmSolver::accelerations(
    const ParticleSet& particles, double a) const {
  const math::Grid3<double> delta = cic_deposit(particles, options_.grid_n);
  const double rhs = 1.5 * options_.omega_m / a;
  const math::Grid3<double> phi = solve_poisson(delta, rhs);
  return interpolate_forces(phi, particles);
}

void PmSolver::kick(ParticleSet& particles,
                    const std::array<std::vector<double>, 3>& acc, double a,
                    double da) const {
  // p = a^2 dx/dt obeys dp/dt = -grad(phi), so dp/da = -grad(phi)/(a E).
  const double factor = da / (a * cosmology_.efunc(a));
  for (std::size_t p = 0; p < particles.size(); ++p) {
    particles.px[p] += acc[0][p] * factor;
    particles.py[p] += acc[1][p] * factor;
    particles.pz[p] += acc[2][p] * factor;
  }
}

void PmSolver::drift(ParticleSet& particles, double a, double da) const {
  const double factor = da / (a * a * a * cosmology_.efunc(a));
  for (std::size_t p = 0; p < particles.size(); ++p) {
    particles.x[p] += particles.px[p] * factor;
    particles.y[p] += particles.py[p] * factor;
    particles.z[p] += particles.pz[p] * factor;
  }
  particles.wrap_positions();
}

void PmSolver::step(ParticleSet& particles, double a, double da) const {
  // KDK: half kick at a, full drift at midpoint, half kick at a + da.
  auto acc = accelerations(particles, a);
  kick(particles, acc, a, 0.5 * da);
  drift(particles, a + 0.5 * da, da);
  acc = accelerations(particles, a + da);
  kick(particles, acc, a + da, 0.5 * da);
}

double momentum_from_kms(double v_kms, double a, double box_mpc) {
  return a * v_kms / (100.0 * box_mpc);
}

double kms_from_momentum(double p, double a, double box_mpc) {
  return p * 100.0 * box_mpc / a;
}

}  // namespace gc::ramses
