// Snapshot output.
//
// "The result of the simulation is a set of 'snapshots'. Given a list of
// time steps (or expansion factor), RAMSES outputs the current state of
// the universe [...] in Fortran binary files. These files need
// post-processing with GALICS softwares" (Section 3). Snapshots here
// carry the full particle state at an expansion factor, in memory and/or
// as Fortran-record files the halo finder consumes.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "cosmo/cosmology.hpp"
#include "ramses/particles.hpp"

namespace gc::ramses {

struct Snapshot {
  double aexp = 0.0;
  double box_mpc = 0.0;
  cosmo::Params params;
  ParticleSet particles;
};

struct SnapshotHeader {
  std::int32_t version;
  std::int32_t reserved;
  std::uint64_t npart;
  double aexp;
  double box_mpc;
  double omega_m, omega_l, h;
};

/// Writes `snapshot` as output_XXXXX.bin in `dir` (RAMSES-style numbered
/// outputs); returns the file path.
gc::Result<std::string> write_snapshot(const std::string& dir, int number,
                                       const Snapshot& snapshot);

gc::Result<Snapshot> read_snapshot(const std::string& path);

}  // namespace gc::ramses
