// Simulation driver: the "RAMSES run" a SED's solve function launches.
//
// Reads run parameters (programmatically or from a .nml namelist, the
// first IN argument of ramsesZoom2), generates GRAFIC initial conditions,
// integrates the N-body system with the PM solver, and emits snapshots at
// the requested expansion factors. run() is serial; run_parallel() spawns
// a MiniMPI world and uses the Peano-Hilbert decomposition, reproducing
// the paper's per-cluster MPI execution at laptop scale.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cosmo/cosmology.hpp"
#include "grafic/ic.hpp"
#include "io/namelist.hpp"
#include "ramses/snapshot.hpp"

namespace gc::ramses {

struct RunParams {
  int npart_dim = 32;        ///< particles per dimension (paper: 128)
  int pm_grid = 64;          ///< PM mesh (>= npart_dim for force accuracy)
  double box_mpc = 100.0;    ///< comoving box (paper: 100 Mpc/h)
  double a_start = 0.05;     ///< z = 19
  double a_end = 1.0;        ///< z = 0
  int steps = 64;            ///< leapfrog steps (log-spaced in a)
  /// Adaptive time stepping (RAMSES-style courant control): the step is
  /// chosen so no particle moves more than `cfl` mesh cells per step;
  /// `steps` then only sets the coarsest (initial) schedule.
  bool adaptive = false;
  double cfl = 0.25;
  std::vector<double> aout;  ///< snapshot expansion factors (always +a_end)
  int zoom_levels = 0;       ///< nested IC boxes (0 = single level)
  grafic::Vec3 zoom_centre;  ///< base-box Mpc/h
  cosmo::Params cosmology;
  std::uint64_t seed = 1234;

  /// Parses the &RUN_PARAMS / &ZOOM_PARAMS groups of a RAMSES-style
  /// namelist; unknown keys are ignored, missing keys keep defaults.
  static gc::Result<RunParams> from_namelist(const io::Namelist& nml);

  /// Writes the equivalent namelist text (what the DIET client ships).
  [[nodiscard]] std::string to_namelist() const;
};

struct RunResult {
  std::vector<Snapshot> snapshots;  ///< at each aout, in order
  std::size_t particle_count = 0;
  int steps_taken = 0;
  double final_imbalance = 1.0;     ///< parallel runs: max/mean rank load
};

using StepCallback =
    std::function<void(int step, double a, const ParticleSet&)>;

/// Serial run.
RunResult run_simulation(const RunParams& params,
                         const StepCallback& on_step = nullptr);

/// Parallel run over `nranks` MiniMPI ranks (threads). Results are
/// identical to the serial run up to the non-associativity of the mesh
/// reduction.
RunResult run_simulation_parallel(const RunParams& params, int nranks);

}  // namespace gc::ramses
