// Particle storage for the N-body solver.
//
// Structure-of-arrays layout; positions are comoving in box units [0, 1),
// momenta are the code momentum p = a^2 dx/dt in units of (box length x
// H0) — see pm.hpp for the unit system. Masses are in units of the total
// box mass (a uniform 128^3 run has mass 1/128^3 per particle; zoom levels
// carry lighter particles).
#pragma once

#include <cstdint>
#include <vector>

#include "common/log.hpp"

namespace gc::ramses {

struct ParticleSet {
  std::vector<double> x, y, z;     ///< comoving position, box units [0,1)
  std::vector<double> px, py, pz;  ///< code momentum a^2 dx/dt
  std::vector<double> mass;        ///< fraction of the total box mass
  std::vector<std::uint64_t> id;   ///< globally unique, stable across time
  std::vector<std::int32_t> level; ///< IC level the particle came from

  [[nodiscard]] std::size_t size() const { return x.size(); }

  void reserve(std::size_t n) {
    x.reserve(n); y.reserve(n); z.reserve(n);
    px.reserve(n); py.reserve(n); pz.reserve(n);
    mass.reserve(n); id.reserve(n); level.reserve(n);
  }

  void push_back(double xi, double yi, double zi, double pxi, double pyi,
                 double pzi, double mi, std::uint64_t idi,
                 std::int32_t leveli) {
    x.push_back(xi); y.push_back(yi); z.push_back(zi);
    px.push_back(pxi); py.push_back(pyi); pz.push_back(pzi);
    mass.push_back(mi); id.push_back(idi); level.push_back(leveli);
  }

  void append(const ParticleSet& other) {
    x.insert(x.end(), other.x.begin(), other.x.end());
    y.insert(y.end(), other.y.begin(), other.y.end());
    z.insert(z.end(), other.z.begin(), other.z.end());
    px.insert(px.end(), other.px.begin(), other.px.end());
    py.insert(py.end(), other.py.begin(), other.py.end());
    pz.insert(pz.end(), other.pz.begin(), other.pz.end());
    mass.insert(mass.end(), other.mass.begin(), other.mass.end());
    id.insert(id.end(), other.id.begin(), other.id.end());
    level.insert(level.end(), other.level.begin(), other.level.end());
  }

  void clear() {
    x.clear(); y.clear(); z.clear();
    px.clear(); py.clear(); pz.clear();
    mass.clear(); id.clear(); level.clear();
  }

  /// Total mass (1.0 for a complete box).
  [[nodiscard]] double total_mass() const {
    double m = 0.0;
    for (const double v : mass) m += v;
    return m;
  }

  /// Wraps all positions back into [0, 1).
  void wrap_positions();

  /// Internal consistency: equal array lengths, positions in range.
  [[nodiscard]] bool valid() const;
};

}  // namespace gc::ramses
