#include "ramses/amr.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace gc::ramses {

AmrTree::AmrTree(const ParticleSet& particles, const AmrOptions& options)
    : options_(options),
      root_grid_n_(std::size_t{1} << options.levelmin) {
  GC_CHECK(options_.levelmin >= 0 && options_.levelmin <= options_.levelmax);
  GC_CHECK(options_.m_refine >= 1);
  build(particles);
}

void AmrTree::build(const ParticleSet& particles) {
  const std::size_t n = root_grid_n_;
  const double cell_size = 1.0 / static_cast<double>(n);

  // Base mesh at levelmin.
  cells_.reserve(n * n * n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        Cell cell;
        cell.cx = (static_cast<double>(i) + 0.5) * cell_size;
        cell.cy = (static_cast<double>(j) + 0.5) * cell_size;
        cell.cz = (static_cast<double>(k) + 0.5) * cell_size;
        cell.half = 0.5 * cell_size;
        cell.level = options_.levelmin;
        cells_.push_back(cell);
      }
    }
  }

  // Bucket particles into base cells.
  std::vector<std::vector<std::uint32_t>> buckets(n * n * n);
  const double nd = static_cast<double>(n);
  for (std::size_t p = 0; p < particles.size(); ++p) {
    auto i = static_cast<std::size_t>(particles.x[p] * nd);
    auto j = static_cast<std::size_t>(particles.y[p] * nd);
    auto k = static_cast<std::size_t>(particles.z[p] * nd);
    i = std::min(i, n - 1);
    j = std::min(j, n - 1);
    k = std::min(k, n - 1);
    buckets[(i * n + j) * n + k].push_back(static_cast<std::uint32_t>(p));
  }

  for (std::size_t c = 0; c < buckets.size(); ++c) {
    refine(c, std::move(buckets[c]), particles);
  }
}

void AmrTree::refine(std::size_t cell_index,
                     std::vector<std::uint32_t> members,
                     const ParticleSet& particles) {
  {
    Cell& cell = cells_[cell_index];
    cell.count = static_cast<std::uint32_t>(members.size());
    cell.mass = 0.0;
    for (const std::uint32_t p : members) cell.mass += particles.mass[p];
    if (cell.level >= options_.levelmax ||
        members.size() <= static_cast<std::size_t>(options_.m_refine)) {
      return;  // leaf
    }
  }

  // Split into 8 children. Note: cells_ may reallocate, so re-read the
  // parent by index after the insertion.
  const std::size_t first_child = cells_.size();
  {
    const Cell parent = cells_[cell_index];
    for (int octant = 0; octant < 8; ++octant) {
      Cell child;
      child.half = 0.5 * parent.half;
      child.cx = parent.cx + ((octant & 1) ? child.half : -child.half);
      child.cy = parent.cy + ((octant & 2) ? child.half : -child.half);
      child.cz = parent.cz + ((octant & 4) ? child.half : -child.half);
      child.level = parent.level + 1;
      cells_.push_back(child);
    }
    cells_[cell_index].first_child = static_cast<std::int32_t>(first_child);
  }

  std::vector<std::uint32_t> child_members[8];
  const Cell& parent = cells_[cell_index];
  for (const std::uint32_t p : members) {
    int octant = 0;
    if (particles.x[p] >= parent.cx) octant |= 1;
    if (particles.y[p] >= parent.cy) octant |= 2;
    if (particles.z[p] >= parent.cz) octant |= 4;
    child_members[octant].push_back(p);
  }
  members.clear();
  members.shrink_to_fit();
  for (int octant = 0; octant < 8; ++octant) {
    refine(first_child + static_cast<std::size_t>(octant),
           std::move(child_members[octant]), particles);
  }
}

std::vector<std::size_t> AmrTree::cells_per_level() const {
  std::vector<std::size_t> counts(
      static_cast<std::size_t>(options_.levelmax) + 1, 0);
  for (const Cell& cell : cells_) {
    counts[static_cast<std::size_t>(cell.level)] += 1;
  }
  return counts;
}

std::size_t AmrTree::leaf_count() const {
  std::size_t leaves = 0;
  for (const Cell& cell : cells_) {
    if (cell.first_child < 0) ++leaves;
  }
  return leaves;
}

int AmrTree::max_level() const {
  int level = 0;
  for (const Cell& cell : cells_) level = std::max(level, int{cell.level});
  return level;
}

std::size_t AmrTree::leaf_at(double x, double y, double z) const {
  const std::size_t n = root_grid_n_;
  const double nd = static_cast<double>(n);
  auto i = std::min(static_cast<std::size_t>(x * nd), n - 1);
  auto j = std::min(static_cast<std::size_t>(y * nd), n - 1);
  auto k = std::min(static_cast<std::size_t>(z * nd), n - 1);
  std::size_t cell = (i * n + j) * n + k;
  while (cells_[cell].first_child >= 0) {
    const Cell& c = cells_[cell];
    int octant = 0;
    if (x >= c.cx) octant |= 1;
    if (y >= c.cy) octant |= 2;
    if (z >= c.cz) octant |= 4;
    cell = static_cast<std::size_t>(c.first_child) +
           static_cast<std::size_t>(octant);
  }
  return cell;
}

double AmrTree::density_at(double x, double y, double z) const {
  const Cell& leaf = cells_[leaf_at(x, y, z)];
  const double volume = std::pow(2.0 * leaf.half, 3);
  return leaf.mass / volume;
}

bool AmrTree::check_invariants() const {
  for (const Cell& cell : cells_) {
    if (cell.level < options_.levelmin || cell.level > options_.levelmax) {
      return false;
    }
    if (cell.first_child >= 0) {
      std::uint32_t count = 0;
      double mass = 0.0;
      for (int o = 0; o < 8; ++o) {
        const Cell& child =
            cells_[static_cast<std::size_t>(cell.first_child) +
                   static_cast<std::size_t>(o)];
        if (child.level != cell.level + 1) return false;
        count += child.count;
        mass += child.mass;
      }
      if (count != cell.count) return false;
      if (std::abs(mass - cell.mass) > 1e-12 + 1e-9 * std::abs(cell.mass)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace gc::ramses
