#include "ramses/snapshot.hpp"

#include <filesystem>

#include "common/strings.hpp"
#include "io/fortran.hpp"

namespace gc::ramses {

gc::Result<std::string> write_snapshot(const std::string& dir, int number,
                                       const Snapshot& snapshot) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return make_error(ErrorCode::kIoError, "cannot create dir " + dir);
  const std::string path = dir + "/" + strformat("output_%05d.bin", number);

  io::FortranWriter writer(path);
  if (!writer.ok()) {
    return make_error(ErrorCode::kIoError, "cannot create " + path);
  }
  SnapshotHeader header{};
  header.version = 1;
  header.reserved = 0;
  header.npart = snapshot.particles.size();
  header.aexp = snapshot.aexp;
  header.box_mpc = snapshot.box_mpc;
  header.omega_m = snapshot.params.omega_m;
  header.omega_l = snapshot.params.omega_l;
  header.h = snapshot.params.h;

  auto status = writer.record_scalar(header);
  const ParticleSet& p = snapshot.particles;
  auto span_of = [](const std::vector<double>& v) {
    return std::span<const double>(v.data(), v.size());
  };
  if (status.is_ok()) status = writer.record_array(span_of(p.x));
  if (status.is_ok()) status = writer.record_array(span_of(p.y));
  if (status.is_ok()) status = writer.record_array(span_of(p.z));
  if (status.is_ok()) status = writer.record_array(span_of(p.px));
  if (status.is_ok()) status = writer.record_array(span_of(p.py));
  if (status.is_ok()) status = writer.record_array(span_of(p.pz));
  if (status.is_ok()) status = writer.record_array(span_of(p.mass));
  if (status.is_ok()) {
    status = writer.record_array(
        std::span<const std::uint64_t>(p.id.data(), p.id.size()));
  }
  if (status.is_ok()) {
    status = writer.record_array(
        std::span<const std::int32_t>(p.level.data(), p.level.size()));
  }
  if (status.is_ok()) status = writer.close();
  if (!status.is_ok()) return status;
  return path;
}

gc::Result<Snapshot> read_snapshot(const std::string& path) {
  io::FortranReader reader(path);
  if (!reader.ok()) {
    return make_error(ErrorCode::kIoError, "cannot open " + path);
  }
  auto header = reader.record_scalar<SnapshotHeader>();
  if (!header.is_ok()) return header.status();
  const SnapshotHeader& h = header.value();
  if (h.version != 1) {
    return make_error(ErrorCode::kIoError, "unsupported snapshot version");
  }

  Snapshot snap;
  snap.aexp = h.aexp;
  snap.box_mpc = h.box_mpc;
  snap.params.omega_m = h.omega_m;
  snap.params.omega_l = h.omega_l;
  snap.params.h = h.h;

  auto read_d = [&](std::vector<double>& out) -> gc::Status {
    auto r = reader.record_array<double>();
    if (!r.is_ok()) return r.status();
    out = std::move(r.value());
    if (out.size() != h.npart) {
      return make_error(ErrorCode::kIoError, "array size mismatch");
    }
    return Status::ok();
  };
  ParticleSet& p = snap.particles;
  gc::Status status = read_d(p.x);
  if (status.is_ok()) status = read_d(p.y);
  if (status.is_ok()) status = read_d(p.z);
  if (status.is_ok()) status = read_d(p.px);
  if (status.is_ok()) status = read_d(p.py);
  if (status.is_ok()) status = read_d(p.pz);
  if (status.is_ok()) status = read_d(p.mass);
  if (status.is_ok()) {
    auto ids = reader.record_array<std::uint64_t>();
    if (!ids.is_ok()) return ids.status();
    p.id = std::move(ids.value());
  }
  if (status.is_ok()) {
    auto levels = reader.record_array<std::int32_t>();
    if (!levels.is_ok()) return levels.status();
    p.level = std::move(levels.value());
  }
  if (!status.is_ok()) return status;
  if (!snap.particles.valid()) {
    return make_error(ErrorCode::kIoError, "snapshot fails validation");
  }
  return snap;
}

}  // namespace gc::ramses
