#include "ramses/domain.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "hilbert/hilbert.hpp"

namespace gc::ramses {

DomainDecomposition::DomainDecomposition(const ParticleSet& particles,
                                         int order, int nranks)
    : order_(order), nranks_(nranks) {
  GC_CHECK(order >= 1 && order <= 10);
  GC_CHECK(nranks >= 1);
  const std::size_t n = std::size_t{1} << order;
  const std::size_t cells = n * n * n;

  // Per-cell particle counts, addressed by Hilbert key.
  std::vector<double> weights(cells, 0.0);
  for (std::size_t p = 0; p < particles.size(); ++p) {
    weights[key_of(particles.x[p], particles.y[p], particles.z[p])] += 1.0;
  }

  bounds_ = hilbert::partition(weights, nranks);
  rank_of_key_.assign(cells, nranks - 1);
  for (int r = 0; r < nranks; ++r) {
    for (std::size_t c = bounds_[static_cast<std::size_t>(r)];
         c < bounds_[static_cast<std::size_t>(r) + 1]; ++c) {
      rank_of_key_[c] = r;
    }
  }
}

std::uint64_t DomainDecomposition::key_of(double x, double y, double z) const {
  const auto n = std::size_t{1} << order_;
  const double nd = static_cast<double>(n);
  const auto clamp = [&](double v) {
    return static_cast<std::uint32_t>(
        std::min(static_cast<std::size_t>(v * nd), n - 1));
  };
  return hilbert::encode(clamp(x), clamp(y), clamp(z), order_);
}

int DomainDecomposition::rank_of(double x, double y, double z) const {
  return rank_of_key_[key_of(x, y, z)];
}

std::vector<std::size_t> DomainDecomposition::load(
    const ParticleSet& particles) const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(nranks_), 0);
  for (std::size_t p = 0; p < particles.size(); ++p) {
    counts[static_cast<std::size_t>(
        rank_of(particles.x[p], particles.y[p], particles.z[p]))] += 1;
  }
  return counts;
}

double DomainDecomposition::imbalance(const ParticleSet& particles) const {
  const auto counts = load(particles);
  std::size_t max = 0;
  std::size_t total = 0;
  for (const std::size_t c : counts) {
    max = std::max(max, c);
    total += c;
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(nranks_);
  return static_cast<double>(max) / mean;
}

ParticleSet exchange_particles(minimpi::Comm& comm, const ParticleSet& mine,
                               const DomainDecomposition& domain) {
  const int nranks = comm.size();
  GC_CHECK(domain.nranks() == nranks);

  // Pack per-destination payloads: 7 doubles + id + level per particle.
  struct Packed {
    double x, y, z, px, py, pz, mass;
    std::uint64_t id;
    std::int32_t level;
    std::int32_t pad = 0;
  };
  std::vector<std::vector<Packed>> outgoing(
      static_cast<std::size_t>(nranks));
  for (std::size_t p = 0; p < mine.size(); ++p) {
    const int dest = domain.rank_of(mine.x[p], mine.y[p], mine.z[p]);
    outgoing[static_cast<std::size_t>(dest)].push_back(
        Packed{mine.x[p], mine.y[p], mine.z[p], mine.px[p], mine.py[p],
               mine.pz[p], mine.mass[p], mine.id[p], mine.level[p], 0});
  }

  const auto incoming = comm.alltoall(outgoing);

  ParticleSet result;
  std::size_t total = 0;
  for (const auto& part : incoming) total += part.size();
  result.reserve(total);
  for (const auto& part : incoming) {
    for (const Packed& q : part) {
      result.push_back(q.x, q.y, q.z, q.px, q.py, q.pz, q.mass, q.id,
                       q.level);
    }
  }
  return result;
}

}  // namespace gc::ramses
