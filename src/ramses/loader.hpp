// Builds the particle load from GRAFIC initial conditions.
//
// Single level: one particle per grid cell, displaced from the cell
// centre by the Zel'dovich field, equal masses summing to 1.
//
// Multi level ("zoom"): the finest level covering a region wins — base
// particles inside a nested box are dropped and replaced by the nested
// level's lighter particles, exactly the "add in the Lagrangian volume of
// the chosen halo a lot more particles" strategy of Section 3.
#pragma once

#include "grafic/ic.hpp"
#include "ramses/particles.hpp"

namespace gc::ramses {

/// Creates particles from `ic`. Masses are normalized so a full single
/// level box has total mass 1; zoom sets conserve that total.
ParticleSet particles_from_ic(const grafic::InitialConditions& ic);

}  // namespace gc::ramses
