#include "ramses/loader.hpp"

#include <cmath>

#include "common/log.hpp"
#include "ramses/pm.hpp"

namespace gc::ramses {

namespace {

/// Is base-box position (in Mpc/h) inside level `lvl`'s box?
bool inside(const grafic::IcLevel& lvl, double x, double y, double z) {
  return x >= lvl.origin.x && x < lvl.origin.x + lvl.box_mpc &&
         y >= lvl.origin.y && y < lvl.origin.y + lvl.box_mpc &&
         z >= lvl.origin.z && z < lvl.origin.z + lvl.box_mpc;
}

}  // namespace

ParticleSet particles_from_ic(const grafic::InitialConditions& ic) {
  GC_CHECK(!ic.levels.empty());
  const grafic::IcLevel& base = ic.levels[0];
  const double box = base.box_mpc;
  const double a = base.a_start;

  ParticleSet particles;
  std::uint64_t next_id = 1;

  for (std::size_t li = 0; li < ic.levels.size(); ++li) {
    const grafic::IcLevel& lvl = ic.levels[li];
    const grafic::IcLevel* finer =
        li + 1 < ic.levels.size() ? &ic.levels[li + 1] : nullptr;
    const auto n = static_cast<std::size_t>(lvl.n);
    const double cell = lvl.cell_mpc();
    // Equal-volume cells within a level: mass fraction = cell volume /
    // box volume.
    const double mass = std::pow(cell / box, 3);

    particles.reserve(particles.size() + n * n * n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) {
          // Lagrangian position: cell centre in base-box Mpc/h.
          const double qx = lvl.origin.x + (static_cast<double>(i) + 0.5) * cell;
          const double qy = lvl.origin.y + (static_cast<double>(j) + 0.5) * cell;
          const double qz = lvl.origin.z + (static_cast<double>(k) + 0.5) * cell;
          // The finest level covering a region provides its particles.
          if (finer != nullptr && inside(*finer, qx, qy, qz)) continue;

          const std::size_t idx = (i * n + j) * n + k;
          const double x = (qx + lvl.disp[0][idx]) / box;
          const double y = (qy + lvl.disp[1][idx]) / box;
          const double z = (qz + lvl.disp[2][idx]) / box;
          particles.push_back(
              x - std::floor(x), y - std::floor(y), z - std::floor(z),
              momentum_from_kms(lvl.vel[0][idx], a, box),
              momentum_from_kms(lvl.vel[1][idx], a, box),
              momentum_from_kms(lvl.vel[2][idx], a, box), mass, next_id++,
              lvl.level);
        }
      }
    }
  }
  particles.wrap_positions();
  return particles;
}

}  // namespace gc::ramses
