// Peano-Hilbert domain decomposition.
//
// "The computational space is decomposed among the available processors
// using a mesh partitionning strategy based on the Peano-Hilbert cell
// ordering" (Section 3). Cells of a 2^order^3 coarse mesh are walked in
// Hilbert order; consecutive curve segments with near-equal particle
// counts are assigned to ranks, so each rank owns a compact, contiguous,
// load-balanced region.
#pragma once

#include <vector>

#include "minimpi/comm.hpp"
#include "ramses/particles.hpp"

namespace gc::ramses {

class DomainDecomposition {
 public:
  /// Builds the decomposition for `nranks` from the particle distribution.
  DomainDecomposition(const ParticleSet& particles, int order, int nranks);

  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] int order() const { return order_; }

  /// Owner rank of a position (box units).
  [[nodiscard]] int rank_of(double x, double y, double z) const;

  /// Particle count each rank would own under this decomposition.
  [[nodiscard]] std::vector<std::size_t> load(const ParticleSet& particles) const;

  /// Max/mean load ratio (1.0 = perfect balance).
  [[nodiscard]] double imbalance(const ParticleSet& particles) const;

  /// Curve-segment boundaries (in Hilbert key space), nranks + 1 entries.
  [[nodiscard]] const std::vector<std::size_t>& bounds() const {
    return bounds_;
  }

 private:
  [[nodiscard]] std::uint64_t key_of(double x, double y, double z) const;

  int order_;
  int nranks_;
  std::vector<std::size_t> bounds_;       ///< partition over curve positions
  std::vector<int> rank_of_key_;          ///< curve position -> rank
};

/// Redistributes particles so each rank holds exactly its domain
/// (collective over comm; every rank passes its current particles).
ParticleSet exchange_particles(minimpi::Comm& comm,
                               const ParticleSet& mine,
                               const DomainDecomposition& domain);

}  // namespace gc::ramses
