#include "ramses/particles.hpp"

#include <cmath>

#include "parallel/pool.hpp"

namespace gc::ramses {

namespace {
double wrap01(double v) {
  v -= std::floor(v);
  if (v >= 1.0) v = 0.0;  // guard against -1e-17 -> 1.0 rounding
  return v;
}
}  // namespace

void ParticleSet::wrap_positions() {
  parallel::parallel_for(0, size(), 8192,
                         [this](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             x[i] = wrap01(x[i]);
                             y[i] = wrap01(y[i]);
                             z[i] = wrap01(z[i]);
                           }
                         });
}

bool ParticleSet::valid() const {
  const std::size_t n = x.size();
  if (y.size() != n || z.size() != n || px.size() != n || py.size() != n ||
      pz.size() != n || mass.size() != n || id.size() != n ||
      level.size() != n) {
    return false;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!(x[i] >= 0.0 && x[i] < 1.0) || !(y[i] >= 0.0 && y[i] < 1.0) ||
        !(z[i] >= 0.0 && z[i] < 1.0)) {
      return false;
    }
    if (!(mass[i] > 0.0)) return false;
  }
  return true;
}

}  // namespace gc::ramses
