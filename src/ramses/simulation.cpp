#include "ramses/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "minimpi/comm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "ramses/domain.hpp"
#include "ramses/loader.hpp"
#include "ramses/pm.hpp"

namespace gc::ramses {

namespace {

/// Log-spaced expansion-factor schedule: a[0] = a_start .. a[steps] = a_end.
std::vector<double> schedule(const RunParams& params) {
  std::vector<double> a(static_cast<std::size_t>(params.steps) + 1);
  const double ratio = params.a_end / params.a_start;
  for (int i = 0; i <= params.steps; ++i) {
    a[static_cast<std::size_t>(i)] =
        params.a_start *
        std::pow(ratio, static_cast<double>(i) / params.steps);
  }
  return a;
}

/// Snapshot expansion factors: user list, clipped to (a_start, a_end],
/// sorted, a_end always present.
std::vector<double> output_times(const RunParams& params) {
  std::vector<double> aout;
  for (const double a : params.aout) {
    if (a > params.a_start && a <= params.a_end) aout.push_back(a);
  }
  aout.push_back(params.a_end);
  std::sort(aout.begin(), aout.end());
  aout.erase(std::unique(aout.begin(), aout.end()), aout.end());
  return aout;
}

Snapshot make_snapshot(const RunParams& params, double a,
                       const ParticleSet& particles) {
  Snapshot snap;
  snap.aexp = a;
  snap.box_mpc = params.box_mpc;
  snap.params = params.cosmology;
  snap.particles = particles;
  return snap;
}

grafic::InitialConditions make_ic(const RunParams& params) {
  grafic::Generator generator(params.cosmology, params.seed);
  if (params.zoom_levels > 0) {
    return generator.multi_level(params.npart_dim, params.box_mpc,
                                 params.a_start, params.zoom_centre,
                                 params.zoom_levels);
  }
  return generator.single_level(params.npart_dim, params.box_mpc,
                                params.a_start);
}

}  // namespace

gc::Result<RunParams> RunParams::from_namelist(const io::Namelist& nml) {
  RunParams params;
  if (const auto* run = nml.group("run_params")) {
    if (auto v = run->get_int("npart"); v.is_ok()) {
      params.npart_dim = static_cast<int>(v.value());
    }
    if (auto v = run->get_int("pm_grid"); v.is_ok()) {
      params.pm_grid = static_cast<int>(v.value());
    }
    if (auto v = run->get_double("boxlen"); v.is_ok()) {
      params.box_mpc = v.value();
    }
    if (auto v = run->get_double("astart"); v.is_ok()) {
      params.a_start = v.value();
    }
    if (auto v = run->get_double("aend"); v.is_ok()) params.a_end = v.value();
    if (auto v = run->get_int("nsteps"); v.is_ok()) {
      params.steps = static_cast<int>(v.value());
    }
    if (auto v = run->get_int("seed"); v.is_ok()) {
      params.seed = static_cast<std::uint64_t>(v.value());
    }
    if (auto v = run->get_doubles("aout"); v.is_ok()) {
      params.aout = v.value();
    }
    if (auto v = run->get_bool("adaptive"); v.is_ok()) {
      params.adaptive = v.value();
    }
    if (auto v = run->get_double("cfl"); v.is_ok()) params.cfl = v.value();
  }
  if (const auto* zoom = nml.group("zoom_params")) {
    if (auto v = zoom->get_int("nlevels"); v.is_ok()) {
      params.zoom_levels = static_cast<int>(v.value());
    }
    if (auto v = zoom->get_doubles("centre"); v.is_ok()) {
      if (v.value().size() != 3) {
        return make_error(ErrorCode::kInvalidArgument,
                          "zoom centre needs 3 coordinates");
      }
      params.zoom_centre = {v.value()[0], v.value()[1], v.value()[2]};
    }
  }
  if (const auto* cosmo_group = nml.group("cosmo_params")) {
    if (auto v = cosmo_group->get_double("omega_m"); v.is_ok()) {
      params.cosmology.omega_m = v.value();
    }
    if (auto v = cosmo_group->get_double("omega_l"); v.is_ok()) {
      params.cosmology.omega_l = v.value();
    }
    if (auto v = cosmo_group->get_double("h"); v.is_ok()) {
      params.cosmology.h = v.value();
    }
    if (auto v = cosmo_group->get_double("sigma8"); v.is_ok()) {
      params.cosmology.sigma8 = v.value();
    }
  }
  if (params.npart_dim < 2 || params.steps < 1 ||
      params.a_start <= 0.0 || params.a_end <= params.a_start) {
    return make_error(ErrorCode::kInvalidArgument, "invalid run parameters");
  }
  return params;
}

std::string RunParams::to_namelist() const {
  io::Namelist nml;
  auto& run = nml.group_or_create("run_params");
  run.set("npart", std::to_string(npart_dim));
  run.set("pm_grid", std::to_string(pm_grid));
  run.set("boxlen", strformat("%.6g", box_mpc));
  run.set("astart", strformat("%.6g", a_start));
  run.set("aend", strformat("%.6g", a_end));
  run.set("nsteps", std::to_string(steps));
  run.set("seed", std::to_string(seed));
  if (adaptive) {
    run.set("adaptive", ".true.");
    run.set("cfl", strformat("%.6g", cfl));
  }
  if (!aout.empty()) {
    std::vector<std::string> parts;
    for (const double a : aout) parts.push_back(strformat("%.6g", a));
    run.set("aout", join(parts, ","));
  }
  if (zoom_levels > 0) {
    auto& zoom = nml.group_or_create("zoom_params");
    zoom.set("nlevels", std::to_string(zoom_levels));
    zoom.set("centre", strformat("%.6g,%.6g,%.6g", zoom_centre.x,
                                 zoom_centre.y, zoom_centre.z));
  }
  auto& cosmo_group = nml.group_or_create("cosmo_params");
  cosmo_group.set("omega_m", strformat("%.6g", cosmology.omega_m));
  cosmo_group.set("omega_l", strformat("%.6g", cosmology.omega_l));
  cosmo_group.set("h", strformat("%.6g", cosmology.h));
  cosmo_group.set("sigma8", strformat("%.6g", cosmology.sigma8));
  return nml.to_string();
}

namespace {

/// Courant-style step limit: da such that the fastest particle moves at
/// most `cfl` mesh cells (dx/da = p / (a^3 E)).
double courant_da(const ParticleSet& particles,
                  const cosmo::Cosmology& cosmology, double a, int mesh_n,
                  double cfl) {
  double p_max = 0.0;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    p_max = std::max({p_max, std::abs(particles.px[i]),
                      std::abs(particles.py[i]), std::abs(particles.pz[i])});
  }
  if (p_max <= 0.0) return 1e9;  // cold start: no kinematic limit
  const double dx_per_da = p_max / (a * a * a * cosmology.efunc(a));
  const double cell = 1.0 / static_cast<double>(mesh_n);
  return cfl * cell / dx_per_da;
}

}  // namespace

RunResult run_simulation(const RunParams& params,
                         const StepCallback& on_step) {
  const cosmo::Cosmology cosmology(params.cosmology);
  PmSolver solver(cosmology, {params.pm_grid, params.cosmology.omega_m});

  ParticleSet particles = particles_from_ic(make_ic(params));
  const std::vector<double> aout = output_times(params);

  RunResult result;
  result.particle_count = particles.size();
  std::size_t next_out = 0;

  // Coarse schedule; under adaptive stepping each span may subdivide.
  const std::vector<double> a = schedule(params);
  // Hard backstop so a pathological CFL cannot loop forever.
  const int max_total_steps = params.adaptive ? 64 * params.steps
                                              : params.steps;

  for (int i = 0; i < params.steps; ++i) {
    const double a1 = a[static_cast<std::size_t>(i) + 1];
    double current = a[static_cast<std::size_t>(i)];
    // The step loop runs outside any Env, so step spans use wall time.
    const double step_wall0 = obs::tracing() || obs::metrics_on()
                                  ? obs::wall_seconds()
                                  : 0.0;
    const int substeps_before = result.steps_taken;
    while (current < a1 - 1e-14) {
      double da = a1 - current;
      if (params.adaptive) {
        da = std::min(da, courant_da(particles, cosmology, current,
                                     params.pm_grid, params.cfl));
        if (result.steps_taken >= max_total_steps) da = a1 - current;
      }
      solver.step(particles, current, da);
      current += da;
      ++result.steps_taken;
    }
    if (obs::tracing()) {
      const obs::SpanId span = obs::Tracer::instance().begin_span(
          step_wall0, "step:" + std::to_string(i), "ramses");
      obs::Tracer::instance().span_arg(
          span, "substeps",
          std::to_string(result.steps_taken - substeps_before));
      obs::Tracer::instance().end_span(span, obs::wall_seconds());
    }
    if (obs::metrics_on()) {
      obs::Metrics::instance()
          .histogram("ramses_step_seconds", obs::latency_buckets_s())
          .observe(obs::wall_seconds() - step_wall0);
    }
    if (on_step) on_step(i, a1, particles);
    while (next_out < aout.size() && a1 >= aout[next_out] - 1e-12) {
      result.snapshots.push_back(
          make_snapshot(params, aout[next_out], particles));
      ++next_out;
    }
  }
  return result;
}

RunResult run_simulation_parallel(const RunParams& params, int nranks) {
  GC_CHECK(nranks >= 1);
  if (nranks == 1) return run_simulation(params);

  RunResult result;
  const int decomposition_order =
      std::max(1, std::min(6, static_cast<int>(std::log2(nranks)) + 2));

  minimpi::run(nranks, [&](minimpi::Comm& comm) {
    const cosmo::Cosmology cosmology(params.cosmology);
    PmSolver solver(cosmology, {params.pm_grid, params.cosmology.omega_m});

    // Rank 0 builds the full load, then scatters it by Hilbert domain.
    ParticleSet mine;
    if (comm.rank() == 0) mine = particles_from_ic(make_ic(params));
    DomainDecomposition domain(mine, decomposition_order, nranks);
    mine = exchange_particles(comm, mine, domain);

    const std::vector<double> a = schedule(params);
    const std::vector<double> aout = output_times(params);
    std::size_t next_out = 0;
    const auto n_mesh = static_cast<std::size_t>(params.pm_grid);

    auto global_acc = [&](ParticleSet& p, double aa) {
      math::Grid3<double> delta = cic_deposit(p, params.pm_grid);
      // cic_deposit subtracts the mean assuming the full mass is local;
      // undo that, reduce, and subtract once globally.
      for (auto& v : delta.raw()) v += 1.0;
      comm.allreduce_vec_sum(delta.raw());
      for (auto& v : delta.raw()) v -= 1.0;
      const double rhs = 1.5 * params.cosmology.omega_m / aa;
      const math::Grid3<double> phi = solve_poisson(delta, rhs);
      (void)n_mesh;
      return interpolate_forces(phi, p);
    };

    for (int i = 0; i < params.steps; ++i) {
      const double a0 = a[static_cast<std::size_t>(i)];
      const double a1 = a[static_cast<std::size_t>(i) + 1];
      const double da = a1 - a0;

      auto acc = global_acc(mine, a0);
      solver.kick(mine, acc, a0, 0.5 * da);
      solver.drift(mine, a0 + 0.5 * da, da);
      acc = global_acc(mine, a1);
      solver.kick(mine, acc, a1, 0.5 * da);

      // Periodic rebalancing: recompute the Hilbert decomposition from
      // the global distribution and exchange.
      if ((i + 1) % 8 == 0) {
        // Build the new decomposition from a reduced coarse histogram:
        // every rank must construct an identical domain, so gather all
        // particles' coarse cells via the weights inside the ctor — here
        // we simply gather positions to keep the implementation simple
        // at the scales this repo runs.
        ParticleSet all;
        all.x = comm.allgather(mine.x);
        all.y = comm.allgather(mine.y);
        all.z = comm.allgather(mine.z);
        all.px.assign(all.x.size(), 0.0);
        all.py.assign(all.x.size(), 0.0);
        all.pz.assign(all.x.size(), 0.0);
        all.mass.assign(all.x.size(), 1.0);
        all.id.assign(all.x.size(), 0);
        all.level.assign(all.x.size(), 0);
        DomainDecomposition fresh(all, decomposition_order, nranks);
        mine = exchange_particles(comm, mine, fresh);
      }

      while (next_out < aout.size() && a1 >= aout[next_out] - 1e-12) {
        // Gather the full state on rank 0 for the snapshot.
        ParticleSet full;
        full.x = comm.gather(mine.x, 0);
        full.y = comm.gather(mine.y, 0);
        full.z = comm.gather(mine.z, 0);
        full.px = comm.gather(mine.px, 0);
        full.py = comm.gather(mine.py, 0);
        full.pz = comm.gather(mine.pz, 0);
        full.mass = comm.gather(mine.mass, 0);
        full.id = comm.gather(mine.id, 0);
        full.level = comm.gather(mine.level, 0);
        if (comm.rank() == 0) {
          result.snapshots.push_back(
              make_snapshot(params, aout[next_out], full));
        }
        ++next_out;
      }
    }

    // Final stats (rank 0 writes the shared result; others are done).
    const auto local = static_cast<double>(mine.size());
    const double max_load = comm.allreduce_max(local);
    const double total = comm.allreduce_sum(local);
    if (comm.rank() == 0) {
      result.steps_taken = params.steps;
      result.particle_count = static_cast<std::size_t>(total);
      result.final_imbalance = max_load * nranks / std::max(total, 1.0);
    }
  });
  return result;
}

}  // namespace gc::ramses
