// Calibrated cost model for RAMSES zoom simulations on the modeled grid.
//
// The DES does not execute the Fortran-scale physics; instead each job's
// virtual duration comes from this model:
//
//     duration = work(spec) / sed_power * amdahl(machines)
//
// where work() is in "power-seconds" (seconds on a 16-machine SED whose
// machines have relative_power 1.0, i.e. Opteron 246). Two anchor points
// are calibrated against Section 5.2:
//   - the first-part 128^3, 100 Mpc/h run took 1h15m11s (4511 s) on the
//     SED that won the first request (Lyon sagittaire, power 1.30);
//   - the second-part sub-simulations averaged 1h24m01s (5041 s) over the
//     11 SEDs, whose mean inverse power is 0.8414.
// Everything else (resolution scaling, zoom-level overhead, parallel
// efficiency) extrapolates from those anchors with standard PM-code
// complexity, and is exercised by the ablation benches.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/rng.hpp"

namespace gc::platform {

struct ZoomJobSpec {
  int resolution = 128;   ///< particles per dimension of the base grid
  double box_mpc = 100.0; ///< comoving box size in Mpc/h
  int zoom_levels = 0;    ///< nested refinement boxes (0 = single level)
};

class RamsesCostModel {
 public:
  struct Tuning {
    /// Power-seconds of the part-1 run (128^3 single level).
    double zoom1_work = 5864.0;
    /// Power-seconds of a part-2 run at its base level.
    double zoom2_work_base = 5870.0;
    /// Additional power-seconds per nested zoom level.
    double zoom2_work_per_level = 60.0;
    /// Amdahl serial fraction of the MPI solver.
    double serial_fraction = 0.05;
    /// Machines a SED controlled in the calibration runs.
    int reference_machines = 16;
    /// Coefficient of variation of the per-job multiplicative jitter.
    double jitter_cv = 0.015;
  };

  RamsesCostModel() = default;
  explicit RamsesCostModel(const Tuning& tuning) : tuning_(tuning) {}

  /// Work of the first, halo-catalog-producing run.
  [[nodiscard]] double zoom1_work(const ZoomJobSpec& spec) const {
    return tuning_.zoom1_work * resolution_scale(spec.resolution);
  }

  /// Work of one re-simulation ("zoom") run.
  [[nodiscard]] double zoom2_work(const ZoomJobSpec& spec) const {
    return (tuning_.zoom2_work_base +
            tuning_.zoom2_work_per_level * spec.zoom_levels) *
           resolution_scale(spec.resolution);
  }

  /// Virtual duration of `work` power-seconds on a SED with machines of
  /// the given relative power.
  [[nodiscard]] double duration(double work, double machine_power,
                                int machines) const {
    const double s = tuning_.serial_fraction;
    const double m = static_cast<double>(machines);
    const double m0 = static_cast<double>(tuning_.reference_machines);
    // Normalized so duration(work, p, reference_machines) == work / p.
    const double scaling = (s + (1.0 - s) * m0 / m) / (s + (1.0 - s));
    return work / machine_power * scaling;
  }

  /// duration() with multiplicative log-normal jitter (mean preserved).
  [[nodiscard]] double duration_with_jitter(double work, double machine_power,
                                            int machines, Rng& rng) const {
    const double d = duration(work, machine_power, machines);
    if (tuning_.jitter_cv <= 0.0) return d;
    return rng.lognormal_with_mean(d, tuning_.jitter_cv);
  }

  [[nodiscard]] const Tuning& tuning() const { return tuning_; }

 private:
  /// PM-code complexity: O(N^3 log N) per step relative to the 128^3
  /// calibration grid.
  [[nodiscard]] static double resolution_scale(int resolution) {
    const double r = static_cast<double>(resolution) / 128.0;
    return r * r * r * (std::log2(static_cast<double>(resolution)) / 7.0);
  }

  Tuning tuning_;
};

/// Closed-form estimate of a striped, disk-staged bulk transfer: the
/// planning-side counterpart of the dynamic net::FlowModel + dtm WAN
/// engine. An uncontended best case — the flow model charges more when
/// other transfers share the links. bench_network prints it next to the
/// measured makespans; schedulers use Env::estimate_transfer_s (which
/// sees live congestion) instead.
class TransferCostModel {
 public:
  struct Path {
    double latency_s = 0.0;
    double path_bps = 0.0;        ///< bottleneck network capacity
    double per_stream_bps = 0.0;  ///< single-flow TCP ceiling (0 = none)
    double disk_read_bps = 0.0;   ///< source NFS stage (0 = unmodeled)
    double disk_write_bps = 0.0;  ///< destination NFS stage (0 = unmodeled)
  };

  /// One bulk transfer of `bytes` over `path` with `streams` parallel
  /// stripes and a modeled-compression ratio in [0, 1) shaving payload.
  [[nodiscard]] static double transfer_s(const Path& path, std::int64_t bytes,
                                         int streams = 1,
                                         double compression = 0.0) {
    if (bytes <= 0 || path.path_bps <= 0.0) return path.latency_s;
    if (streams < 1) streams = 1;
    if (compression < 0.0) compression = 0.0;
    if (compression >= 1.0) compression = 0.99;
    double aggregate = path.path_bps;
    if (path.per_stream_bps > 0.0) {
      const double striped = path.per_stream_bps * streams;
      if (striped < aggregate) aggregate = striped;
    }
    if (path.disk_read_bps > 0.0 && path.disk_read_bps < aggregate) {
      aggregate = path.disk_read_bps;
    }
    if (path.disk_write_bps > 0.0 && path.disk_write_bps < aggregate) {
      aggregate = path.disk_write_bps;
    }
    const double wire_bytes =
        static_cast<double>(bytes) * (1.0 - compression);
    return path.latency_s + wire_bytes / aggregate;
  }
};

}  // namespace gc::platform
