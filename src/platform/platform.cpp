#include "platform/platform.hpp"

#include "common/strings.hpp"

namespace gc::platform {

SiteId Platform::add_site(const std::string& name) {
  const SiteId id = static_cast<SiteId>(sites_.size());
  sites_.push_back(Site{id, name});
  return id;
}

ClusterId Platform::add_cluster(SiteId site, const std::string& name,
                                const MachineModel& model, int machine_count,
                                double lan_latency_s,
                                double lan_bandwidth_bps) {
  GC_CHECK(site < sites_.size());
  GC_CHECK(machine_count > 0);
  const ClusterId id = static_cast<ClusterId>(clusters_.size());
  Cluster cluster{id,   name,          site,
                  model, {},           lan_latency_s,
                  lan_bandwidth_bps};
  cluster.nodes.reserve(static_cast<std::size_t>(machine_count));
  for (int i = 0; i < machine_count; ++i) {
    const auto node_id = static_cast<net::NodeId>(nodes_.size());
    nodes_.push_back(Node{node_id, strformat("%s-%d", name.c_str(), i), id,
                          site, model});
    cluster.nodes.push_back(node_id);
  }
  clusters_.push_back(std::move(cluster));
  return id;
}

void Platform::set_wan_link(SiteId a, SiteId b, double latency_s,
                            double bandwidth_bps, double per_stream_bps) {
  wan_links_[wan_key(a, b)] = WanLink{latency_s, bandwidth_bps,
                                      per_stream_bps};
}

double Platform::latency(net::NodeId a, net::NodeId b) const {
  if (a == b) return 0.0;
  const Node& na = node(a);
  const Node& nb = node(b);
  if (na.cluster == nb.cluster) return clusters_[na.cluster].lan_latency_s;
  if (na.site == nb.site) {
    // Two clusters on one site: site backbone, LAN-class latency.
    return 2.0 * clusters_[na.cluster].lan_latency_s;
  }
  auto it = wan_links_.find(wan_key(na.site, nb.site));
  return it != wan_links_.end() ? it->second.latency_s : wan_latency_;
}

double Platform::bandwidth(net::NodeId a, net::NodeId b) const {
  if (a == b) return 1e12;  // loopback: effectively free
  const Node& na = node(a);
  const Node& nb = node(b);
  if (na.cluster == nb.cluster) return clusters_[na.cluster].lan_bandwidth_bps;
  if (na.site == nb.site) return clusters_[na.cluster].lan_bandwidth_bps;
  auto it = wan_links_.find(wan_key(na.site, nb.site));
  const double bps =
      it != wan_links_.end() ? it->second.bandwidth_bps : wan_bandwidth_;
  return bps * wan_scale_;
}

void Platform::route(net::NodeId a, net::NodeId b, net::Route& out) const {
  out.clear();
  if (a == b) return;
  const Node& na = node(a);
  const Node& nb = node(b);
  const Cluster& ca = clusters_[na.cluster];
  const Cluster& cb = clusters_[nb.cluster];
  out.latency_s = latency(a, b);
  out.add(net::LinkRef{net::linkkey::make(net::linkkey::kLan, na.cluster),
                       ca.lan_bandwidth_bps, 0.0});
  if (na.cluster == nb.cluster) return;  // one switched LAN, one hop
  if (na.site != nb.site) {
    const auto key = wan_key(na.site, nb.site);
    auto it = wan_links_.find(key);
    const double bps =
        (it != wan_links_.end() ? it->second.bandwidth_bps : wan_bandwidth_) *
        wan_scale_;
    double cap =
        it != wan_links_.end() && it->second.per_stream_bps > 0.0
            ? it->second.per_stream_bps
            : wan_per_stream_bps_;
    if (cap > 0.0) cap *= wan_scale_;
    const SiteId lo = na.site < nb.site ? na.site : nb.site;
    const SiteId hi = na.site < nb.site ? nb.site : na.site;
    out.add(net::LinkRef{net::linkkey::make(net::linkkey::kWan, lo, hi), bps,
                         cap});
  }
  out.add(net::LinkRef{net::linkkey::make(net::linkkey::kLan, nb.cluster),
                       cb.lan_bandwidth_bps, 0.0});
}

net::LinkRef Platform::disk_read(net::NodeId n) const {
  const Node& nd = node(n);
  return net::LinkRef{
      net::linkkey::make(net::linkkey::kDiskRead, nd.cluster),
      clusters_[nd.cluster].nfs_read_bps, 0.0};
}

net::LinkRef Platform::disk_write(net::NodeId n) const {
  const Node& nd = node(n);
  return net::LinkRef{
      net::linkkey::make(net::linkkey::kDiskWrite, nd.cluster),
      clusters_[nd.cluster].nfs_write_bps, 0.0};
}

}  // namespace gc::platform
