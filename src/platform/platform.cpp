#include "platform/platform.hpp"

#include "common/strings.hpp"

namespace gc::platform {

SiteId Platform::add_site(const std::string& name) {
  const SiteId id = static_cast<SiteId>(sites_.size());
  sites_.push_back(Site{id, name});
  return id;
}

ClusterId Platform::add_cluster(SiteId site, const std::string& name,
                                const MachineModel& model, int machine_count,
                                double lan_latency_s,
                                double lan_bandwidth_bps) {
  GC_CHECK(site < sites_.size());
  GC_CHECK(machine_count > 0);
  const ClusterId id = static_cast<ClusterId>(clusters_.size());
  Cluster cluster{id,   name,          site,
                  model, {},           lan_latency_s,
                  lan_bandwidth_bps};
  cluster.nodes.reserve(static_cast<std::size_t>(machine_count));
  for (int i = 0; i < machine_count; ++i) {
    const auto node_id = static_cast<net::NodeId>(nodes_.size());
    nodes_.push_back(Node{node_id, strformat("%s-%d", name.c_str(), i), id,
                          site, model});
    cluster.nodes.push_back(node_id);
  }
  clusters_.push_back(std::move(cluster));
  return id;
}

void Platform::set_wan_link(SiteId a, SiteId b, double latency_s,
                            double bandwidth_bps) {
  wan_links_[wan_key(a, b)] = WanLink{latency_s, bandwidth_bps};
}

double Platform::latency(net::NodeId a, net::NodeId b) const {
  if (a == b) return 0.0;
  const Node& na = node(a);
  const Node& nb = node(b);
  if (na.cluster == nb.cluster) return clusters_[na.cluster].lan_latency_s;
  if (na.site == nb.site) {
    // Two clusters on one site: site backbone, LAN-class latency.
    return 2.0 * clusters_[na.cluster].lan_latency_s;
  }
  auto it = wan_links_.find(wan_key(na.site, nb.site));
  return it != wan_links_.end() ? it->second.latency_s : wan_latency_;
}

double Platform::bandwidth(net::NodeId a, net::NodeId b) const {
  if (a == b) return 1e12;  // loopback: effectively free
  const Node& na = node(a);
  const Node& nb = node(b);
  if (na.cluster == nb.cluster) return clusters_[na.cluster].lan_bandwidth_bps;
  if (na.site == nb.site) return clusters_[na.cluster].lan_bandwidth_bps;
  auto it = wan_links_.find(wan_key(na.site, nb.site));
  return it != wan_links_.end() ? it->second.bandwidth_bps : wan_bandwidth_;
}

}  // namespace gc::platform
