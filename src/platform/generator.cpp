#include "platform/generator.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"
#include "platform/machine.hpp"

namespace gc::platform {

GeneratedPlatform make_fattree(const FatTreeConfig& config) {
  GC_CHECK(config.pods > 0 && config.clusters_per_pod > 0 &&
           config.seds_per_cluster > 0 && config.machines_per_sed > 0);
  GeneratedPlatform g{
      Platform(config.core_latency_s, config.core_bandwidth_bps),
      config,
      {},
      {},
      {}};
  const MachineModel model = opteron(config.opteron_model);
  if (config.core_per_stream_bps > 0.0) {
    g.platform.set_wan_per_stream_bps(config.core_per_stream_bps);
  }
  g.ma_nodes.reserve(static_cast<std::size_t>(config.pods));
  g.client_nodes.reserve(static_cast<std::size_t>(config.pods));
  g.clusters.reserve(
      static_cast<std::size_t>(config.pods * config.clusters_per_pod));
  for (int pod = 0; pod < config.pods; ++pod) {
    const SiteId site = g.platform.add_site(strformat("pod%02d", pod));
    // Control cluster: one node for the pod's MA, one for its client
    // swarm (thousands of simulated clients share it, like processes on a
    // submission frontal).
    const ClusterId ctrl = g.platform.add_cluster(
        site, strformat("pod%02d-ctrl", pod), model, 2, config.edge_latency_s,
        config.edge_bandwidth_bps);
    g.ma_nodes.push_back(g.platform.cluster(ctrl).nodes[0]);
    g.client_nodes.push_back(g.platform.cluster(ctrl).nodes[1]);
    for (int c = 0; c < config.clusters_per_pod; ++c) {
      // Node 0 of each edge cluster runs the LA; the rest are SED
      // frontals.
      const ClusterId edge = g.platform.add_cluster(
          site, strformat("pod%02d-edge%02d", pod, c), model,
          1 + config.seds_per_cluster, config.edge_latency_s,
          config.edge_bandwidth_bps);
      GeneratedCluster gen;
      gen.cluster = edge;
      gen.pod = pod;
      const auto& nodes = g.platform.cluster(edge).nodes;
      gen.la_node = nodes[0];
      gen.sed_nodes.assign(nodes.begin() + 1, nodes.end());
      g.clusters.push_back(std::move(gen));
    }
  }
  return g;
}

}  // namespace gc::platform
