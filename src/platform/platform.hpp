// Platform model: sites, clusters, nodes, and the network between them.
//
// Implements net::Topology so an Env can price every message. The model has
// three tiers, matching Grid'5000:
//   - loopback   (same node): free;
//   - cluster LAN (same cluster): ~0.05 ms, 1 Gb/s;
//   - RENATER WAN (different sites): per-site-pair latency, 1 or 10 Gb/s.
// Clusters also carry the NFS constraint of Section 4.1: a simulation's
// generation, processing and post-processing all happen inside one cluster.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/log.hpp"
#include "net/topology.hpp"
#include "platform/machine.hpp"

namespace gc::platform {

using SiteId = std::uint32_t;
using ClusterId = std::uint32_t;

struct Site {
  SiteId id;
  std::string name;
};

struct Cluster {
  ClusterId id;
  std::string name;
  SiteId site;
  MachineModel model;
  std::vector<net::NodeId> nodes;
  double lan_latency_s;
  double lan_bandwidth_bps;
};

struct Node {
  net::NodeId id;
  std::string name;
  ClusterId cluster;
  SiteId site;
  MachineModel model;
};

class Platform final : public net::Topology {
 public:
  /// WAN defaults apply to site pairs without an explicit link.
  Platform(double default_wan_latency_s, double default_wan_bandwidth_bps)
      : wan_latency_(default_wan_latency_s),
        wan_bandwidth_(default_wan_bandwidth_bps) {}

  SiteId add_site(const std::string& name);

  ClusterId add_cluster(SiteId site, const std::string& name,
                        const MachineModel& model, int machine_count,
                        double lan_latency_s = 0.05e-3,
                        double lan_bandwidth_bps = 1e9 / 8.0);

  /// Overrides the WAN link between two sites (symmetric).
  void set_wan_link(SiteId a, SiteId b, double latency_s,
                    double bandwidth_bps);

  // --- net::Topology ---
  [[nodiscard]] double latency(net::NodeId a, net::NodeId b) const override;
  [[nodiscard]] double bandwidth(net::NodeId a, net::NodeId b) const override;

  // --- queries ---
  [[nodiscard]] const Node& node(net::NodeId id) const {
    GC_CHECK(id < nodes_.size());
    return nodes_[id];
  }
  [[nodiscard]] const Cluster& cluster(ClusterId id) const {
    GC_CHECK(id < clusters_.size());
    return clusters_[id];
  }
  [[nodiscard]] const Site& site(SiteId id) const {
    GC_CHECK(id < sites_.size());
    return sites_[id];
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t cluster_count() const { return clusters_.size(); }
  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }

  /// Aggregate relative power of `machines` nodes of a cluster's model.
  [[nodiscard]] double cluster_power(ClusterId id, int machines) const {
    return cluster(id).model.relative_power * machines;
  }

 private:
  [[nodiscard]] std::uint64_t wan_key(SiteId a, SiteId b) const {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  double wan_latency_;
  double wan_bandwidth_;
  std::vector<Site> sites_;
  std::vector<Cluster> clusters_;
  std::vector<Node> nodes_;
  struct WanLink {
    double latency_s;
    double bandwidth_bps;
  };
  std::unordered_map<std::uint64_t, WanLink> wan_links_;
};

}  // namespace gc::platform
