// Platform model: sites, clusters, nodes, and the network between them.
//
// Implements net::Topology so an Env can price every message. The model has
// three tiers, matching Grid'5000:
//   - loopback   (same node): free;
//   - cluster LAN (same cluster): ~0.05 ms, 1 Gb/s;
//   - RENATER WAN (different sites): per-site-pair latency, 1 or 10 Gb/s.
// Clusters also carry the NFS constraint of Section 4.1: a simulation's
// generation, processing and post-processing all happen inside one cluster.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/log.hpp"
#include "net/topology.hpp"
#include "platform/machine.hpp"

namespace gc::platform {

using SiteId = std::uint32_t;
using ClusterId = std::uint32_t;

struct Site {
  SiteId id;
  std::string name;
};

struct Cluster {
  ClusterId id;
  std::string name;
  SiteId site;
  MachineModel model;
  std::vector<net::NodeId> nodes;
  double lan_latency_s;
  double lan_bandwidth_bps;
  /// Shared NFS server bandwidth (Section 4.1: one storage system per
  /// cluster). Charged as a disk stage on file-backed bulk transfers when
  /// the contention model is on; ~125 MB/s matches a GbE-attached NFS.
  double nfs_read_bps = 1.25e8;
  double nfs_write_bps = 1.25e8;
};

struct Node {
  net::NodeId id;
  std::string name;
  ClusterId cluster;
  SiteId site;
  MachineModel model;
};

class Platform final : public net::Topology {
 public:
  /// WAN defaults apply to site pairs without an explicit link.
  Platform(double default_wan_latency_s, double default_wan_bandwidth_bps)
      : wan_latency_(default_wan_latency_s),
        wan_bandwidth_(default_wan_bandwidth_bps) {}

  SiteId add_site(const std::string& name);

  ClusterId add_cluster(SiteId site, const std::string& name,
                        const MachineModel& model, int machine_count,
                        double lan_latency_s = 0.05e-3,
                        double lan_bandwidth_bps = 1e9 / 8.0);

  /// Overrides the WAN link between two sites (symmetric).
  /// `per_stream_bps` > 0 caps any single flow's share of the link — the
  /// lossy-WAN TCP ceiling an MPWide-style striped transfer sidesteps.
  void set_wan_link(SiteId a, SiteId b, double latency_s,
                    double bandwidth_bps, double per_stream_bps = 0.0);

  /// Default per-flow cap for WAN links without an explicit override
  /// (0 = uncapped). Applies to defaulted and explicit links alike when
  /// they carry no cap of their own.
  void set_wan_per_stream_bps(double bps) { wan_per_stream_bps_ = bps; }

  /// Scales every WAN link's bandwidth (and per-flow cap) by `factor`
  /// without touching LAN or disks — how the congestion bench narrows the
  /// inter-site pipes. Affects links added before AND after the call.
  void scale_wan_bandwidth(double factor) {
    GC_CHECK(factor > 0.0);
    wan_scale_ = factor;
  }

  /// NFS bandwidth override for one cluster's disk stage.
  void set_cluster_nfs(ClusterId id, double read_bps, double write_bps) {
    GC_CHECK(id < clusters_.size());
    clusters_[id].nfs_read_bps = read_bps;
    clusters_[id].nfs_write_bps = write_bps;
  }

  // --- net::Topology ---
  [[nodiscard]] double latency(net::NodeId a, net::NodeId b) const override;
  [[nodiscard]] double bandwidth(net::NodeId a, net::NodeId b) const override;
  void route(net::NodeId a, net::NodeId b, net::Route& out) const override;
  [[nodiscard]] net::LinkRef disk_read(net::NodeId n) const override;
  [[nodiscard]] net::LinkRef disk_write(net::NodeId n) const override;

  // --- queries ---
  [[nodiscard]] const Node& node(net::NodeId id) const {
    GC_CHECK(id < nodes_.size());
    return nodes_[id];
  }
  [[nodiscard]] const Cluster& cluster(ClusterId id) const {
    GC_CHECK(id < clusters_.size());
    return clusters_[id];
  }
  [[nodiscard]] const Site& site(SiteId id) const {
    GC_CHECK(id < sites_.size());
    return sites_[id];
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t cluster_count() const { return clusters_.size(); }
  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }

  /// Aggregate relative power of `machines` nodes of a cluster's model.
  [[nodiscard]] double cluster_power(ClusterId id, int machines) const {
    return cluster(id).model.relative_power * machines;
  }

 private:
  [[nodiscard]] std::uint64_t wan_key(SiteId a, SiteId b) const {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  double wan_latency_;
  double wan_bandwidth_;
  double wan_per_stream_bps_ = 0.0;
  double wan_scale_ = 1.0;
  std::vector<Site> sites_;
  std::vector<Cluster> clusters_;
  std::vector<Node> nodes_;
  struct WanLink {
    double latency_s;
    double bandwidth_bps;
    double per_stream_bps = 0.0;
  };
  std::unordered_map<std::uint64_t, WanLink> wan_links_;
};

}  // namespace gc::platform
