// The cost model is header-only; this translation unit exists so the
// platform library always has at least one object file and to host the
// static checks on the calibration anchors.
#include "platform/cost_model.hpp"

namespace gc::platform {

static_assert(sizeof(RamsesCostModel) > 0);

}  // namespace gc::platform
