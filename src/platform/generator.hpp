// Synthetic large-scale platform generator (cf. SimGrid's FatTreeZone).
//
// Produces a multi-site fat-tree: `pods` sites hanging off a core layer,
// each pod holding `clusters_per_pod` edge clusters of SED frontals, plus
// one small control cluster per pod for that pod's MA and client swarm.
// Latency follows tree distance — one edge hop inside a cluster, two hops
// (via the pod's aggregation layer) between clusters of one pod, and the
// core latency between pods — which is exactly the three-tier model
// platform::Platform already prices.
//
// The defaults build 16 x 4 x 16 = 1024 SEDs; the serving bench drives
// thousands of clients against it.
#pragma once

#include <vector>

#include "platform/platform.hpp"

namespace gc::platform {

struct FatTreeConfig {
  int pods = 16;              ///< sites under the core layer
  int clusters_per_pod = 4;   ///< edge clusters per pod
  int seds_per_cluster = 16;  ///< SED frontals per edge cluster
  int machines_per_sed = 8;   ///< compute nodes behind each SED
  /// CPU model of every compute cluster (homogeneous fabric, like one
  /// generation of a production fat-tree).
  int opteron_model = 250;
  double edge_latency_s = 0.05e-3;        ///< one edge-switch hop
  double core_latency_s = 0.5e-3;         ///< pod-to-pod via the core
  double edge_bandwidth_bps = 10e9 / 8.0;  ///< 10 Gb/s edge links
  double core_bandwidth_bps = 40e9 / 8.0;  ///< 40 Gb/s core links
  /// Per-flow ceiling on core (pod-to-pod) links, 0 = none. Under the
  /// contention model this is the single-stream WAN TCP ceiling; striped
  /// transfers open several flows to get past it.
  double core_per_stream_bps = 0.0;
};

/// One edge cluster of the generated tree: its LA's node plus the SED
/// frontal nodes, with the owning pod for shard assignment.
struct GeneratedCluster {
  ClusterId cluster = 0;
  int pod = 0;
  net::NodeId la_node = 0;
  std::vector<net::NodeId> sed_nodes;
};

struct GeneratedPlatform {
  Platform platform;
  FatTreeConfig config;
  /// Per pod: the control-cluster nodes hosting an MA and its clients.
  std::vector<net::NodeId> ma_nodes;
  std::vector<net::NodeId> client_nodes;
  std::vector<GeneratedCluster> clusters;  ///< pod-major order

  [[nodiscard]] int sed_count() const {
    return config.pods * config.clusters_per_pod * config.seds_per_cluster;
  }
};

GeneratedPlatform make_fattree(const FatTreeConfig& config);

}  // namespace gc::platform
