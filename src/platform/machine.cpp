#include "platform/machine.hpp"

namespace gc::platform {

MachineModel opteron(int model) {
  switch (model) {
    case 246:
      return {"opteron-246", 2.0, 1.00};
    case 248:
      return {"opteron-248", 2.2, 1.10};
    case 250:
      return {"opteron-250", 2.4, 1.20};
    case 252:
      return {"opteron-252", 2.6, 1.30};
    case 275:
      // Dual-core 2.2 GHz; the RAMSES runs of the paper used one MPI
      // process per machine slot, so the second core mostly helps the
      // OS/NFS side: effective throughput calibrated from the Nancy
      // cluster's per-job times.
      return {"opteron-275", 2.2, 1.43};
    default:
      return {"opteron-246", 2.0, 1.00};
  }
}

}  // namespace gc::platform
