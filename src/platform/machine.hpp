// Machine catalogue for the Grid'5000 deployment of Section 5.1.
//
// The paper's SEDs each control 16 machines drawn from five AMD Opteron
// models (246, 248, 250, 252, 275). Absolute FLOP rates are irrelevant to
// the reproduction; what matters is the *relative* per-machine throughput
// on the RAMSES workload, which sets the per-cluster simulation times in
// Figure 4 (right). relative_power is calibrated so the slowest cluster
// (Opteron 246) to fastest (Opteron 275 nodes) ratio matches the paper's
// ~15h : ~10h30 spread.
#pragma once

#include <string>

namespace gc::platform {

struct MachineModel {
  std::string name;       ///< e.g. "opteron-250"
  double clock_ghz;       ///< nominal core clock
  double relative_power;  ///< RAMSES throughput relative to Opteron 246
};

/// Returns the catalogue entry for an Opteron model number (246..275).
/// Unknown models fall back to the 246 baseline.
MachineModel opteron(int model);

}  // namespace gc::platform
