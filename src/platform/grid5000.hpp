// The Grid'5000 deployment of Section 5.1, as a reusable preset:
//   - 5 sites (Lyon, Lille, Nancy, Toulouse, Sophia), 6 clusters
//     (Lyon hosts two);
//   - 1 MA on a single node (client and naming service co-located, as in
//     the paper);
//   - 6 LAs, one per cluster;
//   - 11 SEDs, two per cluster except Lyon-capricorne (reservation
//     restrictions left it one), each controlling 16 machines.
//
// Cluster CPU models are assigned so the per-cluster RAMSES throughput
// reproduces Figure 4 (right): Toulouse slowest (~15h busy), Nancy fastest
// (~10h30).
#pragma once

#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace gc::platform {

struct SedPlacement {
  std::string name;       ///< e.g. "SeD-toulouse-0"
  net::NodeId frontal;    ///< node running the server daemon
  ClusterId cluster;
  int machines;           ///< compute nodes behind this SED
};

struct LaPlacement {
  std::string name;       ///< e.g. "LA-toulouse"
  net::NodeId node;
  ClusterId cluster;
  std::vector<int> sed_indexes;  ///< indexes into G5kDeployment::seds
};

struct G5kDeployment {
  Platform platform;
  net::NodeId ma_node = 0;
  net::NodeId client_node = 0;  ///< co-located with the MA
  std::vector<LaPlacement> las;
  std::vector<SedPlacement> seds;
};

/// Tuning knobs for contention experiments; the default is the paper's
/// deployment, untouched.
struct G5kOptions {
  /// Scales every WAN link's bandwidth (1.0 = RENATER as calibrated).
  /// bench_network narrows the pipes (< 1) to create congestion.
  double wan_bandwidth_scale = 1.0;
  /// Per-flow ceiling on WAN links (0 = none): the lossy-WAN single-TCP
  /// throughput ceiling that MPWide-style striping sidesteps.
  double wan_per_stream_bps = 0.0;
};

/// Builds the Section 5.1 deployment. `machines_per_sed` defaults to the
/// paper's 16.
G5kDeployment make_grid5000(int machines_per_sed = 16,
                            const G5kOptions& options = {});

}  // namespace gc::platform
