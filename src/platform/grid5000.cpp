#include "platform/grid5000.hpp"

#include "common/units.hpp"

namespace gc::platform {

namespace {
struct ClusterSpec {
  const char* site;
  const char* cluster;
  int opteron_model;
  int sed_count;
};
}  // namespace

G5kDeployment make_grid5000(int machines_per_sed,
                            const G5kOptions& options) {
  // RENATER backbone between sites: ~20 ms effective one-way delay for a
  // CORBA message (propagation via the Paris hub + TCP/ORB overheads),
  // 1 Gb/s towards the provincial sites. Calibrated against the paper's
  // ~50 ms finding time: two WAN hops dominate the scheduling round-trip.
  G5kDeployment d{Platform(/*wan_latency=*/20e-3,
                           /*wan_bandwidth=*/gbit_per_s(1.0)),
                  0, 0, {}, {}};

  const ClusterSpec specs[] = {
      // Lyon first: the MA/client node lives on the Lyon site.
      {"lyon", "sagittaire", 252, 2},
      {"lyon", "capricorne", 250, 1},  // reservation restrictions: one SED
      {"lille", "chti", 250, 2},
      {"nancy", "grelon", 275, 2},
      {"toulouse", "violette", 246, 2},
      {"sophia", "helios", 248, 2},
  };

  SiteId lyon = 0;
  bool first = true;
  std::string last_site_name;
  SiteId current_site = 0;
  for (const auto& spec : specs) {
    if (first || spec.site != last_site_name) {
      current_site = d.platform.add_site(spec.site);
      last_site_name = spec.site;
      if (first) lyon = current_site;
      first = false;
    }
    // Per cluster: 1 service/frontal node per SED + the compute machines.
    const int node_count = spec.sed_count * (1 + machines_per_sed) + 1;
    const ClusterId cid = d.platform.add_cluster(
        current_site, spec.cluster, opteron(spec.opteron_model), node_count);
    const Cluster& cluster = d.platform.cluster(cid);

    LaPlacement la;
    la.name = std::string("LA-") + spec.cluster;
    la.node = cluster.nodes[0];
    la.cluster = cid;
    for (int s = 0; s < spec.sed_count; ++s) {
      SedPlacement sed;
      sed.name = std::string("SeD-") + spec.cluster + "-" +
                 std::to_string(s);
      sed.frontal = cluster.nodes[1 + s * (1 + machines_per_sed)];
      sed.cluster = cid;
      sed.machines = machines_per_sed;
      la.sed_indexes.push_back(static_cast<int>(d.seds.size()));
      d.seds.push_back(sed);
    }
    d.las.push_back(std::move(la));
  }

  // Nancy is on the faster 10 Gb/s RENATER segment from Lyon.
  // (Latency dominates the finding time either way.)
  d.platform.set_wan_link(lyon, /*nancy=*/2, 18e-3, gbit_per_s(10.0));

  // MA + client co-located on the Lyon sagittaire frontal-adjacent node:
  // "1 MA deployed on a single node, along with omniORB, the monitoring
  // tools, and the client".
  const Cluster& sagittaire = d.platform.cluster(0);
  d.ma_node = sagittaire.nodes.back();
  d.client_node = d.ma_node;

  // Contention-experiment knobs; the defaults are exact no-ops, keeping
  // the stock deployment (and every run priced on it) untouched.
  if (options.wan_bandwidth_scale != 1.0) {
    d.platform.scale_wan_bandwidth(options.wan_bandwidth_scale);
  }
  if (options.wan_per_stream_bps > 0.0) {
    d.platform.set_wan_per_stream_bps(options.wan_per_stream_bps);
  }
  return d;
}

}  // namespace gc::platform
