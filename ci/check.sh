#!/usr/bin/env bash
# Full local gate: configure + build (warnings as errors), unit tests,
# gclint over src/, clang-tidy (when installed), and the three sanitizer
# smoke suites. Everything a PR must survive, runnable on a laptop:
#
#   ci/check.sh            # default build + tests + lint + tidy
#   ci/check.sh --full     # also tsan/asan/ubsan smoke builds (slow)
#
# Exits non-zero on the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."

FULL=0
[[ "${1:-}" == "--full" ]] && FULL=1

step() { printf '\n== %s ==\n' "$*"; }

step "configure + build (default preset, -Werror)"
cmake --preset default
cmake --build --preset default -j "$(nproc)"

step "unit tests"
ctest --preset default --output-on-failure -j "$(nproc)"

step "chaos fault-injection suite (ctest -L chaos)"
ctest --preset default -L chaos --output-on-failure

step "gclint over src/"
./build/tools/gclint/gclint src

step "model-checker smoke (ctest -L mc-smoke + mc_explore sweep)"
# Exhaustive DPOR verification of the bounded scenarios (src/mc): every
# inequivalent schedule of each scenario is executed and the invariant
# layer checked on all of them, plus the seeded-mutation detection proofs.
ctest --preset default -L mc-smoke --output-on-failure
./build/examples/mc_explore --json build/BENCH_mc.json
# Tripwires on the sweep: every scenario must explore to completion with
# no violation, and sleep-set reduction must actually prune.
python3 - build/BENCH_mc.json <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
for s in report["scenarios"]:
    print(f'{s["name"]}: explored={s["explored"]} pruned={s["pruned"]}')
    assert s["complete"], f'{s["name"]} hit the execution cap'
    assert not s["violation"], f'{s["name"]} violated an invariant'
    assert s["pruned"] > 0, f'{s["name"]}: sleep sets pruned nothing'
PY

step "bench-smoke (bench_des --quick)"
# Not a benchmark run — a regression tripwire. The floor is set ~10x below
# what this container sustains (see BENCH_des.json) so only a catastrophic
# DES-kernel slowdown, not machine noise, fails the gate.
./build/bench/bench_des --quick --floor 250000 --json build/BENCH_des_smoke.json
# Sampler-on lane tripwire: the full-run record in BENCH_des.json puts the
# time-series sampler under 5% on pingstorm; in the noisy quick run only a
# blowout past 10% fails the gate.
python3 - build/BENCH_des_smoke.json <<'PY'
import json, sys
lanes = {w["name"]: w["events_per_sec"]
         for w in json.load(open(sys.argv[1]))["workloads"]}
ratio = lanes["pingstorm_sampled"] / lanes["pingstorm"]
print(f"pingstorm with sampler on: {100 * ratio:.1f}% of sampler-off")
assert ratio > 0.90, "time-series sampler overhead blew past 10% on pingstorm"
PY

step "network smoke (bench_network --quick --floor + compat digest gate)"
# The contention-aware flow model, end to end: the congested campaign must
# keep the volatile vs persistent+mct-data makespan separation above 20%,
# MPWide-style striping must beat a single stream on the lossy WAN, and
# the compat row (contention off) must land on the stock paper digest —
# the flow model has to be invisible when disabled.
./build/bench/bench_network --quick --floor \
  --json build/BENCH_network_smoke.json
python3 - build/BENCH_network_smoke.json <<'PY'
import json, sys
rows = json.load(open(sys.argv[1]))
summary = next(r for r in rows if r["table"] == "summary")
compat = next(r for r in rows if r["table"] == "compat")
congested = [r for r in rows if r["table"] == "congested"]
assert summary["separation"] >= 0.20, \
    f'separation {summary["separation"]:.2%} < 20%'
assert summary["striping_gain"] >= 1.05, \
    f'striping gain {summary["striping_gain"]:.2f}x < 1.05x'
assert compat["flows_completed"] == 0, "contention off but flows ran"
assert all(r["flows_completed"] > 0 for r in congested), \
    "contention on but a congested row ran no flows"
assert all(r.get("failed_calls", 0) == 0 for r in rows), \
    "a campaign lost calls"
print(f'separation {summary["separation"]:.1%}, '
      f'striping gain {summary["striping_gain"]:.2f}x, '
      f'compat digest {compat["science_digest"]}')
PY
# Contention-off digest gate: with the flow model compiled in but
# disabled, the stock 22-sub-sim campaign must still produce the exact
# pre-flow-model science digest.
DN=$(./build/examples/zoom_campaign --subsims 22 --digest | grep 'science digest')
[[ "${DN#*: }" == "f4a58abe6945215d" ]]
echo "contention-off campaign digest pinned (${DN#*: })"

step "serving smoke (bench_serving --quick + federated digest gate)"
# Same tripwire philosophy as bench-smoke: the quick sweep sustains ~400
# req/s single-MA on this container, so only a serving-path collapse trips
# the 300 floor. bench_serving itself asserts 0 failed calls and digest
# equality across the 1- and 2-MA sweep points.
./build/bench/bench_serving --quick --floor 300 \
  --json build/BENCH_serving_smoke.json
python3 - build/BENCH_serving_smoke.json <<'PY'
import json, sys
runs = json.load(open(sys.argv[1]))["runs"]
assert len(runs) >= 2, "quick sweep lost its MA points"
assert all(r["failed"] == 0 for r in runs), "serving run failed calls"
assert len({r["science_digest"] for r in runs}) == 1, \
    "science digest depends on the MA count"
fed = [r for r in runs if r["mas"] > 1]
assert fed and all(r["peer_forwards"] > 0 for r in fed), \
    "federated run never exercised peer forwarding"
print(f"{len(runs)} serving runs, 0 failed, digest "
      f"{runs[0]['science_digest']} across mas="
      f"{sorted(r['mas'] for r in runs)}")
PY
# The campaign itself must also be MA-count-invariant: the paper's 22
# sub-simulation experiment split across a 2-MA federation has to land on
# the same science digest as the stock single-MA run.
D1=$(./build/examples/zoom_campaign --subsims 22 --digest | grep 'science digest')
D2=$(./build/examples/zoom_campaign --subsims 22 --mas 2 --digest | grep 'science digest')
[[ -n "$D1" && "${D1#*: }" == "${D2#*: }" ]]
echo "campaign digest single-MA == 2-MA federation (${D1#*: })"

step "gcprof over a 22-sub-sim campaign (schema + determinism)"
# Two campaigns, different tie-break seeds: the journal and time-series
# exports must be byte-identical (virtual-time sampling, trace-id-sorted
# export), and gcprof --strict must give every request a complete
# client->MA->LA->SED path whose phases telescope to the latency.
GCP=build/gcprof_ci
mkdir -p "$GCP"
./build/examples/zoom_campaign --subsims 22 \
  --journal "$GCP/j1.jsonl" --timeseries "$GCP/t1.jsonl" \
  --metrics-interval 120 > /dev/null
./build/examples/zoom_campaign --subsims 22 --tie-seed 97 \
  --journal "$GCP/j2.jsonl" --timeseries "$GCP/t2.jsonl" \
  --metrics-interval 120 > /dev/null
cmp "$GCP/j1.jsonl" "$GCP/j2.jsonl"
cmp "$GCP/t1.jsonl" "$GCP/t2.jsonl"
# Schema spot-checks: journal lines carry the path and phase boundaries,
# series lines carry the sampled registry.
grep -q '"path": {"ma": ' "$GCP/j1.jsonl"
grep -q '"phases": {"submitted": ' "$GCP/j1.jsonl"
grep -q '"counters": {' "$GCP/t1.jsonl"
[[ "$(wc -l < "$GCP/j1.jsonl")" == "23" ]]   # zoom1 + 22 zoom2
./build/tools/gcprof/gcprof --journal "$GCP/j1.jsonl" \
  --timeseries "$GCP/t1.jsonl" --strict --json "$GCP/report1.json" \
  > "$GCP/report1.txt"
./build/tools/gcprof/gcprof --journal "$GCP/j2.jsonl" \
  --timeseries "$GCP/t2.jsonl" --strict --json "$GCP/report2.json" \
  > /dev/null
cmp "$GCP/report1.json" "$GCP/report2.json"
grep -q '"complete_paths": 23' "$GCP/report1.json"
grep -q '"violations": \[\]' "$GCP/report1.json"

step "clang-tidy (src/common + src/des)"
if command -v clang-tidy >/dev/null 2>&1; then
  # Focused pass over the foundational modules; the GC_CLANG_TIDY=ON
  # configure option runs it build-wide instead.
  clang-tidy -p build --quiet \
    src/common/*.cpp src/des/*.cpp
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

if [[ "$FULL" == "1" ]]; then
  for san in tsan asan ubsan; do
    step "${san} smoke"
    cmake --preset "${san}"
    cmake --build --preset "${san}" -j "$(nproc)"
    ctest --preset "${san}-smoke"
  done
else
  echo
  echo "Skipped sanitizer smoke suites (run with --full)."
fi

echo
echo "All checks passed."
