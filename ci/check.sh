#!/usr/bin/env bash
# Full local gate: configure + build (warnings as errors), unit tests,
# gclint over src/, clang-tidy (when installed), and the three sanitizer
# smoke suites. Everything a PR must survive, runnable on a laptop:
#
#   ci/check.sh            # default build + tests + lint + tidy
#   ci/check.sh --full     # also tsan/asan/ubsan smoke builds (slow)
#
# Exits non-zero on the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."

FULL=0
[[ "${1:-}" == "--full" ]] && FULL=1

step() { printf '\n== %s ==\n' "$*"; }

step "configure + build (default preset, -Werror)"
cmake --preset default
cmake --build --preset default -j "$(nproc)"

step "unit tests"
ctest --preset default --output-on-failure -j "$(nproc)"

step "chaos fault-injection suite (ctest -L chaos)"
ctest --preset default -L chaos --output-on-failure

step "gclint over src/"
./build/tools/gclint/gclint src

step "bench-smoke (bench_des --quick)"
# Not a benchmark run — a regression tripwire. The floor is set ~10x below
# what this container sustains (see BENCH_des.json) so only a catastrophic
# DES-kernel slowdown, not machine noise, fails the gate.
./build/bench/bench_des --quick --floor 250000 --json build/BENCH_des_smoke.json

step "clang-tidy (src/common + src/des)"
if command -v clang-tidy >/dev/null 2>&1; then
  # Focused pass over the foundational modules; the GC_CLANG_TIDY=ON
  # configure option runs it build-wide instead.
  clang-tidy -p build --quiet \
    src/common/*.cpp src/des/*.cpp
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

if [[ "$FULL" == "1" ]]; then
  for san in tsan asan ubsan; do
    step "${san} smoke"
    cmake --preset "${san}"
    cmake --build --preset "${san}" -j "$(nproc)"
    ctest --preset "${san}-smoke"
  done
else
  echo
  echo "Skipped sanitizer smoke suites (run with --full)."
fi

echo
echo "All checks passed."
