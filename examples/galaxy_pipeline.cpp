// The full post-processing chain of Section 3, end to end:
//
//   GRAFIC ICs -> RAMSES (PM N-body, snapshots at several expansion
//   factors) -> HaloMaker -> TreeMaker -> GalaxyMaker
//
// and packs the catalogs into the tarball a ramsesZoom2 call would ship
// back. Prints the merger statistics and the final galaxy catalog.
//
//   ./galaxy_pipeline [--n 16] [--steps 32] [--out /tmp/results.tar]
#include <cstdio>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "galaxy/galaxymaker.hpp"
#include "halo/halomaker.hpp"
#include "io/tar.hpp"
#include "ramses/pm.hpp"
#include "ramses/simulation.hpp"
#include "tree/treemaker.hpp"

namespace {

gc::halo::HaloCatalog find_halos_in(const gc::ramses::Snapshot& snap) {
  std::vector<double> vx(snap.particles.size());
  std::vector<double> vy(snap.particles.size());
  std::vector<double> vz(snap.particles.size());
  for (std::size_t i = 0; i < snap.particles.size(); ++i) {
    vx[i] = gc::ramses::kms_from_momentum(snap.particles.px[i], snap.aexp,
                                          snap.box_mpc);
    vy[i] = gc::ramses::kms_from_momentum(snap.particles.py[i], snap.aexp,
                                          snap.box_mpc);
    vz[i] = gc::ramses::kms_from_momentum(snap.particles.pz[i], snap.aexp,
                                          snap.box_mpc);
  }
  const gc::halo::ParticleView view{&snap.particles.x, &snap.particles.y,
                                    &snap.particles.z, &vx, &vy, &vz,
                                    &snap.particles.mass, &snap.particles.id};
  return gc::halo::find_halos(view, snap.aexp, snap.box_mpc,
                              gc::halo::FofOptions{0.2, 8});
}

}  // namespace

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);

  gc::ramses::RunParams params;
  params.npart_dim = static_cast<int>(args.get_int("n", 16));
  if ((params.npart_dim & (params.npart_dim - 1)) != 0 ||
      params.npart_dim < 4) {
    std::fprintf(stderr, "--n must be a power of two >= 4 (got %d)\n",
                 params.npart_dim);
    return 1;
  }
  params.pm_grid = 2 * params.npart_dim;
  params.steps = static_cast<int>(args.get_int("steps", 32));
  params.a_start = 0.1;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 9));
  params.aout = {0.4, 0.55, 0.7, 0.85};
  const std::string out = args.get("out", "/tmp/gc_galaxy_results.tar");

  std::printf("pipeline: %d^3 particles, snapshots at a = 0.40 0.55 0.70 "
              "0.85 1.00\n",
              params.npart_dim);

  // RAMSES.
  const gc::ramses::RunResult run = gc::ramses::run_simulation(params);
  std::printf("[ramses]      %zu particles, %zu snapshots\n",
              run.particle_count, run.snapshots.size());

  // HaloMaker on every snapshot.
  std::vector<gc::halo::HaloCatalog> catalogs;
  for (const auto& snap : run.snapshots) {
    catalogs.push_back(find_halos_in(snap));
    std::printf("[halomaker]   a=%.2f: %zu halos\n", snap.aexp,
                catalogs.back().halos.size());
  }

  // TreeMaker.
  const gc::tree::MergerForest forest = gc::tree::build_forest(catalogs);
  std::printf("[treemaker]   %zu nodes, %zu mergers, %zu z=0 roots, "
              "invariants %s\n",
              forest.nodes().size(), forest.merger_count(),
              forest.roots().size(),
              forest.check_invariants() ? "OK" : "VIOLATED");
  if (!forest.roots().empty()) {
    const auto branch = forest.main_branch(forest.roots().front());
    std::printf("              heaviest z=0 halo traced through %zu "
                "snapshots\n", branch.size());
  }

  // GalaxyMaker.
  const gc::cosmo::Cosmology cosmology(params.cosmology);
  const auto galaxy_catalogs = gc::galaxy::run_sam(forest, cosmology);
  if (!galaxy_catalogs.empty()) {
    const auto& final_catalog = galaxy_catalogs.back();
    double total_stars = 0.0;
    int merged = 0;
    for (const auto& g : final_catalog.galaxies) {
      total_stars += g.mstar;
      if (g.n_mergers > 0) ++merged;
    }
    std::printf("[galaxymaker] %zu galaxies at a=%.2f, total stellar mass "
                "%.3e (box units), %d with merger history\n",
                final_catalog.galaxies.size(), final_catalog.aexp,
                total_stars, merged);
    std::printf("%s", gc::galaxy::catalog_to_text(final_catalog).c_str());
  }

  // Tarball, as solve_ramsesZoom2 would return it (Section 4.2.3).
  gc::io::TarWriter tar;
  (void)tar.add_text("README.txt", "galaxy pipeline example results\n");
  for (std::size_t s = 0; s < catalogs.size(); ++s) {
    (void)tar.add_text(gc::strformat("halos_%03zu.txt", s),
                       gc::halo::catalog_to_text(catalogs[s]));
  }
  if (!galaxy_catalogs.empty()) {
    (void)tar.add_text("galaxies.txt",
                       gc::galaxy::catalog_to_text(galaxy_catalogs.back()));
  }
  if (tar.write(out).is_ok()) {
    std::printf("[tar]         results packed into %s (%zu entries)\n",
                out.c_str(), tar.entry_count());
  }
  return 0;
}
