// mc_explore: exhaustive DPOR model checking of bounded DIET scenarios.
//
//   mc_explore                         # verify every scenario (DPOR)
//   mc_explore --scenario small_drop   # one scenario
//   mc_explore --naive                 # sleep sets off (pruning baseline)
//   mc_explore --max-executions N      # cap (0 = unlimited)
//   mc_explore --json FILE             # machine-readable results
//   mc_explore --trace-out FILE        # write counterexample trace here
//   mc_explore --replay FILE           # deterministically re-run a trace
//   mc_explore --mutate NAME           # re-introduce a known-fixed bug
//   mc_explore --list                  # list scenarios
//
// Exit codes: 0 clean (or replay reproduced its violation), 1 a scenario
// violated a property, 2 usage/replay error.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/mutation.hpp"
#include "common/log.hpp"
#include "mc/checker.hpp"
#include "mc/scenario.hpp"

namespace {

struct MutationName {
  const char* name;
  gc::check::Mutation mutation;
};

constexpr MutationName kMutationNames[] = {
    {"stale-wire-reuse", gc::check::Mutation::kStaleReplyReuseWire},
    {"sed-skip-dedup", gc::check::Mutation::kSedSkipDedup},
    {"keep-replicas-on-eviction", gc::check::Mutation::kKeepReplicasOnEviction},
};

struct ScenarioOutcome {
  std::string name;
  gc::mc::Result result;
};

void print_result(const ScenarioOutcome& outcome) {
  const gc::mc::Result& r = outcome.result;
  std::cout << "scenario " << outcome.name << ": explored=" << r.schedules_explored
            << " pruned=" << r.schedules_pruned
            << " executions=" << r.executions
            << " decision_points=" << r.decision_points
            << " max_enabled=" << r.max_enabled
            << (r.complete ? " complete"
                           : (r.violation_found ? " stopped" : " CAPPED"))
            << (r.violation_found ? " VIOLATION" : " ok") << "\n";
}

std::string json_of(const std::vector<ScenarioOutcome>& outcomes,
                    bool sleep_sets) {
  std::ostringstream out;
  out << "{\n  \"checker\": \"dpor\",\n  \"sleep_sets\": "
      << (sleep_sets ? "true" : "false") << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const gc::mc::Result& r = outcomes[i].result;
    out << "    {\"name\": \"" << outcomes[i].name << "\", \"explored\": "
        << r.schedules_explored << ", \"pruned\": " << r.schedules_pruned
        << ", \"executions\": " << r.executions << ", \"decision_points\": "
        << r.decision_points << ", \"max_enabled\": " << r.max_enabled
        << ", \"complete\": " << (r.complete ? "true" : "false")
        << ", \"violation\": " << (r.violation_found ? "true" : "false")
        << "}" << (i + 1 < outcomes.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

int run_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "mc_explore: cannot read trace file " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string scenario_name;
  std::vector<gc::mc::Decision> decisions;
  if (!gc::mc::decode_trace(buffer.str(), scenario_name, decisions)) {
    std::cerr << "mc_explore: malformed trace file " << path << "\n";
    return 2;
  }
  const gc::mc::Scenario* scenario = gc::mc::find_scenario(scenario_name);
  if (scenario == nullptr) {
    std::cerr << "mc_explore: trace names unknown scenario '" << scenario_name
              << "'\n";
    return 2;
  }
  std::cout << "replaying " << scenario_name << " with " << decisions.size()
            << " forced decisions\n";
  const gc::mc::ReplayResult replay =
      gc::mc::replay(scenario->fn, decisions);
  for (const gc::mc::Step& step : replay.schedule) {
    std::cout << "  [" << step.index << "] t=" << step.time << " cid "
              << step.cid << " owner " << step.owner;
    auto name = replay.owner_names.find(step.owner);
    if (name != replay.owner_names.end()) std::cout << " (" << name->second << ")";
    std::cout << " [picked " << step.picked << " of " << step.alternatives
              << "]\n";
  }
  if (replay.violation_found) {
    std::cout << "VIOLATION reproduced: " << replay.violation.what << "\n  at "
              << replay.violation.file << ":" << replay.violation.line << "\n";
    return 0;
  }
  std::cout << "no violation on this schedule\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Thousands of re-executions of fault scenarios produce the same
  // expected retry warnings over and over; GC_LOG_LEVEL overrides.
  gc::set_default_log_level(gc::LogLevel::kError);
  std::string only;
  std::string json_path;
  std::string trace_out;
  std::string replay_path;
  gc::mc::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "mc_explore: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      only = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--naive") {
      options.sleep_sets = false;
    } else if (arg == "--max-executions") {
      options.max_executions = std::stoull(next());
    } else if (arg == "--no-minimize") {
      options.minimize = false;
    } else if (arg == "--mutate") {
      const std::string which = next();
      bool found = false;
      for (const MutationName& m : kMutationNames) {
        if (which == m.name) {
          gc::check::set_mutation(m.mutation, true);
          found = true;
        }
      }
      if (!found) {
        std::cerr << "mc_explore: unknown mutation '" << which << "'; one of:";
        for (const MutationName& m : kMutationNames) std::cerr << " " << m.name;
        std::cerr << "\n";
        return 2;
      }
      if (!gc::check::kMutationsCompiled) {
        std::cerr << "mc_explore: built without GC_MC_MUTATIONS; --mutate is "
                     "a no-op\n";
        return 2;
      }
    } else if (arg == "--list") {
      for (const gc::mc::Scenario& s : gc::mc::scenarios()) {
        std::cout << s.name << "  -  " << s.description << "\n";
      }
      return 0;
    } else {
      std::cerr << "mc_explore: unknown option " << arg << "\n";
      return 2;
    }
  }

  if (!replay_path.empty()) return run_replay(replay_path);

  std::vector<ScenarioOutcome> outcomes;
  bool violated = false;
  for (const gc::mc::Scenario& scenario : gc::mc::scenarios()) {
    if (!only.empty() && scenario.name != only) continue;
    const gc::mc::Result result = gc::mc::explore(scenario.fn, options);
    outcomes.push_back(ScenarioOutcome{scenario.name, result});
    print_result(outcomes.back());
    if (result.violation_found) {
      violated = true;
      std::cout << gc::mc::format_counterexample(result);
      const std::string trace =
          gc::mc::encode_trace(scenario.name, result.counterexample);
      if (!trace_out.empty()) {
        std::ofstream out(trace_out);
        out << trace;
        std::cout << "counterexample trace written to " << trace_out
                  << " (replay with --replay)\n";
      } else {
        std::cout << "counterexample trace:\n" << trace;
      }
    }
  }
  if (outcomes.empty()) {
    std::cerr << "mc_explore: no scenario named '" << only
              << "' (see --list)\n";
    return 2;
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json_of(outcomes, options.sleep_sets);
  }
  return violated ? 1 : 0;
}
