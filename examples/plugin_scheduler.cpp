// Writing a plug-in scheduler (the improvement Section 5.2 calls for).
//
// "The equal distribution of the requests does not take into account the
// machines processing power. [...] A better makespan could be attained by
// writing a plug-in scheduler[2]."
//
// This example writes one in user code: a Weighted-Share policy that
// targets per-SED request counts proportional to machine power, using
// only fields of the standard estimation vector. It then replays the
// campaign under the default, the user plug-in, and the built-in MCT
// policy, and prints the makespans side by side.
//
//   ./plugin_scheduler [--subsims 100]
#include <cstdio>
#include <memory>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "sched/policy.hpp"
#include "workflow/campaign.hpp"

namespace {

/// User-written plug-in: rank by (outstanding work) / power, i.e. share
/// requests proportionally to processing power.
class WeightedSharePolicy final : public gc::sched::Policy {
 public:
  std::string name() const override { return "weighted-share"; }

  void rank(std::vector<gc::sched::Candidate>& candidates,
            const gc::sched::RequestContext&, gc::Rng& rng) override {
    // Random tie-breaking first, like the default policy.
    for (std::size_t i = candidates.size(); i > 1; --i) {
      std::swap(candidates[i - 1], candidates[rng.uniform_u64(i)]);
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const gc::sched::Candidate& a,
                        const gc::sched::Candidate& b) {
                       return score(a) < score(b);
                     });
  }

 private:
  static double score(const gc::sched::Candidate& c) {
    const double outstanding =
        std::max(c.est.agent_assigned, c.est.queue_length);
    return (outstanding + 1.0) / std::max(c.est.host_power, 1e-9);
  }
};

double run_with(const char* label, gc::workflow::CampaignConfig config) {
  const gc::workflow::CampaignResult result =
      gc::workflow::run_grid5000_campaign(config);
  double busiest = 0.0;
  double idlest = 1e18;
  for (const auto& sed : result.seds) {
    busiest = std::max(busiest, sed.busy_seconds);
    idlest = std::min(idlest, sed.busy_seconds);
  }
  std::printf("%-16s makespan %16s   busiest SED %16s   idlest %16s\n",
              label, gc::format_duration(result.makespan).c_str(),
              gc::format_duration(busiest).c_str(),
              gc::format_duration(idlest).c_str());
  return result.makespan;
}

}  // namespace

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const int subsims = static_cast<int>(args.get_int("subsims", 100));

  std::printf("plug-in scheduler comparison (%d sub-simulations on the "
              "Grid'5000 deployment)\n\n", subsims);

  gc::workflow::CampaignConfig base;
  base.sub_simulations = subsims;

  gc::workflow::CampaignConfig defaults = base;
  const double default_makespan = run_with("default", defaults);

  gc::workflow::CampaignConfig plugin = base;
  plugin.policy_factory = [] {
    return std::make_unique<WeightedSharePolicy>();
  };
  const double plugin_makespan = run_with("weighted-share", plugin);

  gc::workflow::CampaignConfig mct = base;
  mct.policy = "mct";
  const double mct_makespan = run_with("mct", mct);

  // MCT with the data-locality term: only meaningful when requests carry
  // persistent data for the replica catalog to place (shipping the input
  // once, then id-only references that favour SEDs already holding it).
  gc::workflow::CampaignConfig mct_data = base;
  mct_data.policy = "mct-data";
  mct_data.input_mode = gc::diet::Persistence::kPersistent;
  mct_data.services.output_mode = gc::diet::Persistence::kPersistent;
  const double mct_data_makespan = run_with("mct-data", mct_data);

  std::printf("\nweighted-share saves %.1f%% over default; "
              "mct saves %.1f%%; mct-data (persistent inputs) %.1f%%\n",
              100.0 * (default_makespan - plugin_makespan) / default_makespan,
              100.0 * (default_makespan - mct_makespan) / default_makespan,
              100.0 * (default_makespan - mct_data_makespan) /
                  default_makespan);
  return 0;
}
