// Quickstart: write a DIET server and client exactly like the paper.
//
// This example reproduces Section 4 ("Interfacing RAMSES within DIET") at
// laptop scale: it defines the ramsesZoom1 service with the paper's
// DIET_server.h API (profile description, service table, synchronous
// solve function), deploys MA + LA + 2 SEDs in-process, then acts as the
// client of Section 4.3 (diet_initialize / diet_profile_alloc /
// diet_scalar_set / diet_file_set / diet_call / diet_file_get).
//
// The solve function runs the real pipeline: GRAFIC initial conditions ->
// PM/N-body -> HaloMaker; a 16^3 run finishes in a couple of seconds.
//
//   ./quickstart [--resolution 16] [--box 100]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "diet/agent.hpp"
#include "diet/capi.hpp"
#include "halo/halomaker.hpp"
#include "ramses/loader.hpp"
#include "ramses/pm.hpp"
#include "ramses/simulation.hpp"
#include "sched/policy.hpp"

namespace {

std::string g_work_dir;

// ---- the server side of Section 4.2: a synchronous solve function ----------

int solve_ramsesZoom1(diet_profile_t* pb) {
  /* Data downloading */
  char* namelist_path = nullptr;
  std::size_t namelist_size = 0;
  if (diet_file_get(diet_parameter(pb, 0), nullptr, &namelist_size,
                    &namelist_path) != 0) {
    return 1;
  }
  const int* resolution = nullptr;
  const int* box = nullptr;
  diet_scalar_get(diet_parameter(pb, 1), &resolution, nullptr);
  diet_scalar_get(diet_parameter(pb, 2), &box, nullptr);
  std::printf("[server] solve_ramsesZoom1(resolution=%d, size=%d Mpc/h, "
              "namelist=%s)\n",
              *resolution, *box, namelist_path);

  /* Computation: GRAFIC ICs -> PM N-body -> HaloMaker */
  gc::ramses::RunParams params;
  params.npart_dim = *resolution;
  params.pm_grid = 2 * *resolution;
  params.box_mpc = *box;
  params.a_start = 0.1;
  params.steps = 16;
  params.seed = 2007;
  const gc::ramses::RunResult run = gc::ramses::run_simulation(params);
  std::free(namelist_path);
  if (run.snapshots.empty()) return 2;

  const gc::ramses::Snapshot& snap = run.snapshots.back();
  std::vector<double> vx(snap.particles.size());
  std::vector<double> vy(snap.particles.size());
  std::vector<double> vz(snap.particles.size());
  for (std::size_t i = 0; i < snap.particles.size(); ++i) {
    vx[i] = gc::ramses::kms_from_momentum(snap.particles.px[i], snap.aexp,
                                          snap.box_mpc);
    vy[i] = gc::ramses::kms_from_momentum(snap.particles.py[i], snap.aexp,
                                          snap.box_mpc);
    vz[i] = gc::ramses::kms_from_momentum(snap.particles.pz[i], snap.aexp,
                                          snap.box_mpc);
  }
  const gc::halo::ParticleView view{
      &snap.particles.x, &snap.particles.y, &snap.particles.z,
      &vx,               &vy,               &vz,
      &snap.particles.mass, &snap.particles.id};
  const gc::halo::HaloCatalog catalog = gc::halo::find_halos(
      view, snap.aexp, snap.box_mpc, gc::halo::FofOptions{0.2, 8});

  /* Data uploading */
  const std::string out = g_work_dir + "/halo_catalog.bin";
  if (!gc::halo::write_catalog(out, catalog).is_ok()) return 3;
  diet_file_set(diet_parameter(pb, 3), DIET_VOLATILE, out.c_str());
  const std::int32_t error_code = 0;
  diet_scalar_set(diet_parameter(pb, 4), &error_code, DIET_VOLATILE,
                  DIET_INT);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const int resolution = static_cast<int>(args.get_int("resolution", 16));
  const int box = static_cast<int>(args.get_int("box", 100));

  g_work_dir = (std::filesystem::temp_directory_path() / "gc_quickstart")
                   .string();
  std::filesystem::create_directories(g_work_dir);

  // ---- deployment: MA, one LA, two SEDs on an in-process RealEnv ----
  gc::net::UniformTopology topology(0.5e-3, 1.25e8);
  gc::net::RealEnv env(topology);
  gc::naming::Registry registry;
  gc::diet::capi::bind_process(env, registry, /*client_node=*/0);

  gc::diet::Agent ma(gc::diet::Agent::Kind::kMaster, "MA1",
                     gc::sched::make_default_policy(), {}, 1);
  env.attach(ma, 1);
  registry.rebind("MA1", ma.endpoint());
  gc::diet::Agent la(gc::diet::Agent::Kind::kLocal, "LA1",
                     gc::sched::make_default_policy(), {}, 2);
  env.attach(la, 2);
  registry.rebind("LA1", la.endpoint());
  la.register_at(ma.endpoint());

  // Configuration files, as the real tools would read them.
  const std::string sed_cfg = g_work_dir + "/sed.cfg";
  {
    std::ofstream cfg(sed_cfg);
    cfg << "parentName = LA1\nname = SeD-local\nnodeId = 3\n"
           "hostPower = 1.0\nmachines = 1\nworkDir = " << g_work_dir << "\n";
  }
  const std::string client_cfg = g_work_dir + "/client.cfg";
  {
    std::ofstream cfg(client_cfg);
    cfg << "# client configuration (Section 4.3.1)\nMAName = MA1\n";
  }

  // ---- server main(): profile description + registration (Section 4.2) ----
  diet_service_table_init(8);
  diet_profile_desc_t* profile_desc =
      diet_profile_desc_alloc("ramsesZoom1", 2, 2, 4);
  diet_generic_desc_set(diet_parameter(profile_desc, 0), DIET_FILE, DIET_CHAR);
  diet_generic_desc_set(diet_parameter(profile_desc, 1), DIET_SCALAR, DIET_INT);
  diet_generic_desc_set(diet_parameter(profile_desc, 2), DIET_SCALAR, DIET_INT);
  diet_generic_desc_set(diet_parameter(profile_desc, 3), DIET_FILE, DIET_CHAR);
  diet_generic_desc_set(diet_parameter(profile_desc, 4), DIET_SCALAR, DIET_INT);
  if (diet_service_table_add(profile_desc, nullptr, solve_ramsesZoom1) != 0) {
    std::fprintf(stderr, "service registration failed\n");
    return 1;
  }
  diet_profile_desc_free(profile_desc);
  if (diet_SeD(sed_cfg.c_str(), argc, argv) != 0) return 1;

  // ---- client main() (Section 4.3.1) ----
  if (diet_initialize(client_cfg.c_str(), argc, argv) != 0) return 1;
  env.wait_idle();  // let registration settle

  const std::string namelist = g_work_dir + "/zoom.nml";
  {
    std::ofstream nml(namelist);
    nml << "&run_params\n  npart=" << resolution << "\n  boxlen=" << box
        << "\n/\n";
  }

  diet_profile_t* profile = diet_profile_alloc("ramsesZoom1", 2, 2, 4);
  if (diet_file_set(diet_parameter(profile, 0), DIET_VOLATILE,
                    namelist.c_str()) != 0) {
    std::fprintf(stderr, "diet_file_set error on the <namelist.nml> file\n");
    return 1;
  }
  diet_scalar_set(diet_parameter(profile, 1), &resolution, DIET_VOLATILE,
                  DIET_INT);
  diet_scalar_set(diet_parameter(profile, 2), &box, DIET_VOLATILE, DIET_INT);
  // OUT arguments declared with NULL values (Section 4.3.2).
  diet_file_set(diet_parameter(profile, 3), DIET_VOLATILE, nullptr);

  std::printf("[client] calling ramsesZoom1 (%d^3 particles, %d Mpc/h)...\n",
              resolution, box);
  if (diet_call(profile) != 0) {
    std::fprintf(stderr, "diet_call failed\n");
    return 1;
  }

  // Access the OUT data (the paper's Section 4.3.2 pattern).
  const int* returned_value = nullptr;
  diet_scalar_get(diet_parameter(profile, 4), &returned_value, nullptr);
  if (*returned_value == 0) {
    std::size_t catalog_size = 0;
    char* catalog_path = nullptr;
    diet_file_get(diet_parameter(profile, 3), nullptr, &catalog_size,
                  &catalog_path);
    auto catalog = gc::halo::read_catalog(catalog_path);
    std::printf("[client] simulation succeeded: %zu halos in %s (%zu B)\n",
                catalog.is_ok() ? catalog.value().halos.size() : 0,
                catalog_path, catalog_size);
    if (catalog.is_ok()) {
      int shown = 0;
      std::printf("         id     npart   mass        x      y      z\n");
      for (const auto& halo : catalog.value().halos) {
        std::printf("         %-6llu %-7zu %.3e %.3f  %.3f  %.3f\n",
                    static_cast<unsigned long long>(halo.id), halo.npart,
                    halo.mass, halo.x, halo.y, halo.z);
        if (++shown == 5) break;
      }
    }
    std::free(catalog_path);
  } else {
    std::printf("[client] simulation failed with error code %d\n",
                *returned_value);
  }

  diet_profile_free(profile);
  diet_finalize();
  env.stop();
  gc::diet::capi::unbind_process();
  return 0;
}
