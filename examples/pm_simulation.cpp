// Run the RAMSES-style solver directly: GRAFIC initial conditions, PM
// N-body integration (optionally over MiniMPI ranks with Peano-Hilbert
// domain decomposition), AMR statistics, and a halo catalog at z = 0.
//
//   ./pm_simulation                          # 16^3, serial
//   ./pm_simulation --n 32 --steps 32        # bigger run
//   ./pm_simulation --ranks 4                # MiniMPI parallel
//   ./pm_simulation --zoom 2                 # nested zoom ICs
//   ./pm_simulation --threads 4              # pool threads (= GC_THREADS)
//   ./pm_simulation --trace out.json --metrics m.txt   # observability
//   ./pm_simulation --timeseries t.jsonl --metrics-interval 0.5
//                                            # wall-clock metrics curves
#include <cstdio>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "obs/session.hpp"
#include "obs/timeseries.hpp"
#include "parallel/pool.hpp"
#include "cosmo/massfunction.hpp"
#include "halo/halomaker.hpp"
#include "halo/overdensity.hpp"
#include "ramses/amr.hpp"
#include "ramses/domain.hpp"
#include "ramses/pm.hpp"
#include "ramses/simulation.hpp"

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const gc::obs::Session obs = gc::obs::Session::from_cli(args);
  // No DES calendar here, so --timeseries samples on the wall clock; the
  // session's finish() stops the thread and writes the JSONL.
  if (obs.timeseries_active()) {
    gc::obs::TimeSeries::instance().start_wall_sampler();
  }

  gc::ramses::RunParams params;
  params.npart_dim = static_cast<int>(args.get_int("n", 16));
  if ((params.npart_dim & (params.npart_dim - 1)) != 0 ||
      params.npart_dim < 4) {
    std::fprintf(stderr, "--n must be a power of two >= 4 (got %d)\n",
                 params.npart_dim);
    return 1;
  }
  params.pm_grid = static_cast<int>(args.get_int("grid", 2 * params.npart_dim));
  params.box_mpc = args.get_double("box", 100.0);
  params.steps = static_cast<int>(args.get_int("steps", 24));
  params.a_start = args.get_double("astart", 0.1);
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  params.zoom_levels = static_cast<int>(args.get_int("zoom", 0));
  params.zoom_centre = {params.box_mpc / 2, params.box_mpc / 2,
                        params.box_mpc / 2};
  params.aout = {0.5};
  const int ranks = static_cast<int>(args.get_int("ranks", 1));
  // 0 keeps the default (GC_THREADS env var, else hardware concurrency).
  gc::parallel::set_thread_count(
      static_cast<std::size_t>(args.get_int("threads", 0)));

  std::printf("PM/N-body: %d^3 particles, %d^3 mesh, box %.0f Mpc/h, "
              "a %.2f -> 1.0 in %d steps, %d rank(s), %d zoom level(s), "
              "%zu pool thread(s)\n",
              params.npart_dim, params.pm_grid, params.box_mpc,
              params.a_start, params.steps, ranks, params.zoom_levels,
              gc::parallel::thread_count());

  const gc::ramses::RunResult result =
      ranks > 1 ? gc::ramses::run_simulation_parallel(params, ranks)
                : gc::ramses::run_simulation(params);
  std::printf("ran %d steps over %zu particles", result.steps_taken,
              result.particle_count);
  if (ranks > 1) {
    std::printf(" (final load imbalance %.3f)", result.final_imbalance);
  }
  std::printf("; %zu snapshots\n\n", result.snapshots.size());

  const gc::ramses::Snapshot& final_snap = result.snapshots.back();

  // AMR view of the final state.
  gc::ramses::AmrOptions amr_options;
  amr_options.levelmin = 3;
  amr_options.levelmax = 9;
  const gc::ramses::AmrTree tree(final_snap.particles, amr_options);
  std::printf("AMR tree at a=%.2f: %zu cells, %zu leaves, levels %d..%d\n",
              final_snap.aexp, tree.cells().size(), tree.leaf_count(),
              amr_options.levelmin, tree.max_level());
  const auto per_level = tree.cells_per_level();
  for (std::size_t level = 0; level < per_level.size(); ++level) {
    if (per_level[level] > 0) {
      std::printf("  level %2zu: %8zu cells\n", level, per_level[level]);
    }
  }

  // Hilbert decomposition balance (what the paper's 16-machine SEDs used).
  gc::ramses::DomainDecomposition domain(final_snap.particles, 4, 16);
  std::printf("Hilbert decomposition over 16 ranks: imbalance %.3f\n\n",
              domain.imbalance(final_snap.particles));

  // HaloMaker on the final snapshot.
  std::vector<double> vx(final_snap.particles.size());
  std::vector<double> vy(final_snap.particles.size());
  std::vector<double> vz(final_snap.particles.size());
  for (std::size_t i = 0; i < final_snap.particles.size(); ++i) {
    vx[i] = gc::ramses::kms_from_momentum(final_snap.particles.px[i],
                                          final_snap.aexp,
                                          final_snap.box_mpc);
    vy[i] = gc::ramses::kms_from_momentum(final_snap.particles.py[i],
                                          final_snap.aexp,
                                          final_snap.box_mpc);
    vz[i] = gc::ramses::kms_from_momentum(final_snap.particles.pz[i],
                                          final_snap.aexp,
                                          final_snap.box_mpc);
  }
  const gc::halo::ParticleView view{
      &final_snap.particles.x,    &final_snap.particles.y,
      &final_snap.particles.z,    &vx,
      &vy,                        &vz,
      &final_snap.particles.mass, &final_snap.particles.id};
  const gc::halo::HaloCatalog catalog = gc::halo::find_halos(
      view, final_snap.aexp, final_snap.box_mpc, gc::halo::FofOptions{0.2, 8});
  std::printf("HaloMaker: %zu halos (FoF b=0.2, >= 8 particles)\n",
              catalog.halos.size());
  std::printf("%s", gc::halo::catalog_to_text(catalog).c_str());

  // Spherical-overdensity masses and the Press-Schechter cross-check.
  const auto so = gc::halo::so_properties(view, catalog, 200.0);
  gc::cosmo::MassFunction mass_function(params.cosmology);
  const double box_mass =
      mass_function.mean_density() * std::pow(params.box_mpc, 3);
  std::printf("\nM200 (SO) per halo [Msun/h]:");
  for (const auto& properties : so) {
    std::printf(" %.2e", properties.mass * box_mass);
  }
  std::printf("\n");
  if (!catalog.halos.empty()) {
    const double min_mass = catalog.halos.back().mass * box_mass;
    std::printf("Press-Schechter check: %zu halos found above %.2e Msun/h; "
                "PS expects %.1f in this volume at a=%.2f\n",
                catalog.halos.size(), min_mass,
                mass_function.count_above(min_mass, params.box_mpc,
                                          final_snap.aexp),
                final_snap.aexp);
  }
  return 0;
}
