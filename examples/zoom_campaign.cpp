// The Section 5 experiment, runnable and configurable.
//
// Deploys DIET on the modeled Grid'5000 platform (1 MA, 6 LAs, 11 SEDs x
// 16 machines), submits the 128^3 / 100 Mpc/h first-part simulation, then
// the simultaneous sub-simulations, and prints the full report: headline
// numbers, per-SED distribution, and the finding-time/latency series.
//
//   ./zoom_campaign                      # the paper's exact campaign
//   ./zoom_campaign --subsims 30 --policy mct --seed 3
//   ./zoom_campaign --machines 32        # what 32-machine SEDs would do
//   ./zoom_campaign --fault-sed 7 --fault-at 600   # kill a SED at t=600s
//   ./zoom_campaign --fault-plan mixed --fault-seed 3   # chaos run
//   ./zoom_campaign --trace out.json     # Perfetto trace of the campaign
//   ./zoom_campaign --journal j.jsonl    # per-request phase journal
//   ./zoom_campaign --timeseries t.jsonl --metrics-interval 30
//                                        # metrics sampled every 30 sim-s
//   ./zoom_campaign --tie-seed 5         # scramble same-time event order
//                                        # (results must not change)
//   ./zoom_campaign --persistence persistent --policy mct-data
//                                        # DTM: replica catalog + locality
//   ./zoom_campaign --mas 2 --digest     # federated: 2 MA hierarchies,
//                                        # print the science digest
//   ./zoom_campaign --contention --wan-scale 0.05
//                                        # flow-model network: transfers
//                                        # fair-share the narrowed WAN
//   ./zoom_campaign --contention --wan-streams 4 --wan-per-stream 2e6
//                                        # MPWide-style striped transfers
//                                        # on a lossy (per-stream-capped)
//                                        # backbone
//
// Fault plans (--fault-plan, or the GC_FAULT_PLAN environment variable)
// are spelled "preset[,key=value...]" with presets none, drop-only,
// crash-only, and mixed; --fault-seed (or GC_FAULT_SEED) makes the whole
// chaos run replayable bit-for-bit. See DESIGN.md, "Fault model".
//
// Data management (--persistence, or GC_PERSISTENCE) selects volatile
// (the default: every request ships its input, outputs come home in
// full) or persistent (inputs and service outputs stay on the SEDs,
// registered in the hierarchy's replica catalog; repeat requests ship
// id-only references and missing data travels SED-to-SED). --replicas N
// (GC_REPLICAS) additionally write-replicates fresh persistent data to N
// SEDs. See DESIGN.md, "Data management".
//
// Network contention (--contention, or GC_CONTENTION=1) switches bulk
// transfers from the closed-form latency+bytes/bw cost to the flow model:
// concurrent transfers fair-share every link on their route and NFS
// staging charges the cluster disks. --wan-scale F (GC_WAN_SCALE)
// narrows the RENATER backbone, --wan-streams K (GC_WAN_STREAMS) stripes
// bulk dtm pushes over K parallel streams, --wan-per-stream B caps each
// stream at B bytes/s (the lossy-WAN TCP ceiling striping exists to
// beat), --wan-relay routes stripes through the requester's LA. See
// DESIGN.md, "Network & disk model".
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "obs/session.hpp"
#include "workflow/campaign.hpp"

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const gc::obs::Session obs = gc::obs::Session::from_cli(args);

  gc::workflow::CampaignConfig config;
  config.sub_simulations = static_cast<int>(args.get_int("subsims", 100));
  config.policy = args.get("policy", "default");
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  config.tie_break_seed =
      static_cast<std::uint64_t>(args.get_int("tie-seed", 0));
  config.machines_per_sed = static_cast<int>(args.get_int("machines", 16));
  config.resolution = static_cast<int>(args.get_int("resolution", 128));
  config.nb_box = static_cast<int>(args.get_int("nbbox", 2));
  config.fault_sed_index = static_cast<int>(args.get_int("fault-sed", -1));
  config.fault_at_s = args.get_double("fault-at", 0.0);
  if (config.fault_sed_index >= 0) {
    // Survive the injected failure: bound calls and allow resubmission.
    config.call_deadline_s = args.get_double("deadline", 16.0 * 3600.0);
    config.max_retries = static_cast<int>(args.get_int("retries", 2));
  }

  config.fault_plan = args.get("fault-plan", "");
  if (config.fault_plan.empty()) {
    if (const char* env_plan = std::getenv("GC_FAULT_PLAN")) {
      config.fault_plan = env_plan;
    }
  }
  long fault_seed_default = 1;
  if (const char* env_seed = std::getenv("GC_FAULT_SEED")) {
    fault_seed_default = std::atol(env_seed);
  }
  config.fault_seed = static_cast<std::uint64_t>(
      args.get_int("fault-seed", fault_seed_default));
  const bool chaos =
      !config.fault_plan.empty() && config.fault_plan != "none";

  // Federation: --mas N splits the hierarchy into N peered MA shards.
  // --digest prints the science digest even fault-free (it is only in the
  // chaos report otherwise), so runs can be compared across --mas values;
  // the default report stays byte-identical to the pre-federation binary.
  config.federation_mas = static_cast<int>(args.get_int("mas", 1));
  const bool print_digest = args.has("digest");

  std::string persistence = args.get("persistence", "");
  if (persistence.empty()) {
    if (const char* env_mode = std::getenv("GC_PERSISTENCE")) {
      persistence = env_mode;
    }
  }
  const bool persistent = persistence == "persistent";
  if (!persistence.empty() && !persistent && persistence != "volatile") {
    std::fprintf(stderr, "unknown --persistence '%s' (volatile|persistent)\n",
                 persistence.c_str());
    return 2;
  }
  long replicas_default = 1;
  if (const char* env_replicas = std::getenv("GC_REPLICAS")) {
    replicas_default = std::atol(env_replicas);
  }
  config.replicas =
      static_cast<int>(args.get_int("replicas", replicas_default));
  if (persistent) {
    config.input_mode = gc::diet::Persistence::kPersistent;
    config.services.output_mode = gc::diet::Persistence::kPersistent;
  }

  // Contention flow model + WAN engine. Flags win; GC_ envs supply
  // defaults so scripted sweeps need no argv surgery.
  bool contention_default = false;
  if (const char* env_c = std::getenv("GC_CONTENTION")) {
    contention_default = std::atol(env_c) != 0;
  }
  config.contention = args.has("contention") || contention_default;
  long streams_default = 1;
  if (const char* env_s = std::getenv("GC_WAN_STREAMS")) {
    streams_default = std::atol(env_s);
  }
  config.wan_streams =
      static_cast<int>(args.get_int("wan-streams", streams_default));
  double wan_scale_default = 1.0;
  if (const char* env_ws = std::getenv("GC_WAN_SCALE")) {
    wan_scale_default = std::atof(env_ws);
  }
  config.wan_bandwidth_scale = args.get_double("wan-scale", wan_scale_default);
  config.wan_per_stream_bps = args.get_double("wan-per-stream", 0.0);
  config.wan_relay = args.has("wan-relay");
  config.wan_compression = args.get_double("wan-compression", 0.0);
  config.wan_compress_bps = args.get_double("wan-compress-bps", 0.0);

  std::printf("zoom campaign: %d sub-simulations of %d^3 particles, "
              "%d nested boxes, policy '%s', %d machines/SED\n\n",
              config.sub_simulations, config.resolution, config.nb_box,
              config.policy.c_str(), config.machines_per_sed);

  const gc::workflow::CampaignResult result =
      gc::workflow::run_grid5000_campaign(config);

  std::printf("first part (ramsesZoom1) : %s on %s\n",
              gc::format_duration(result.part1_duration).c_str(),
              result.zoom1.sed_name.c_str());
  std::printf("second part mean exec    : %s\n",
              gc::format_duration(result.part2_mean_exec).c_str());
  std::printf("total experiment         : %s\n",
              gc::format_duration(result.makespan).c_str());
  std::printf("sequential estimate      : %s (speedup %.2fx)\n",
              gc::format_duration(result.sequential_estimate).c_str(),
              result.sequential_estimate / result.makespan);
  std::printf("mean finding time        : %s\n",
              gc::format_duration(result.finding_mean).c_str());
  std::printf("total middleware overhead: %s\n",
              gc::format_duration(result.overhead_total).c_str());
  std::printf("failed calls             : %llu (%llu resubmissions)\n",
              static_cast<unsigned long long>(result.failed_calls),
              static_cast<unsigned long long>(result.resubmissions));
  std::printf("network traffic          : %s in %llu messages\n",
              gc::format_bytes(result.network_bytes).c_str(),
              static_cast<unsigned long long>(result.network_messages));
  if (config.federation_mas > 1) {
    std::printf("federation               : %d MAs, %llu peer forwards, "
                "%llu peer replies\n",
                config.federation_mas,
                static_cast<unsigned long long>(result.federation_forwards),
                static_cast<unsigned long long>(result.federation_replies));
  }
  if (print_digest) {
    std::printf("science digest           : %016llx\n",
                static_cast<unsigned long long>(result.science_digest));
  }
  // Printed only under --contention so the default report stays
  // byte-identical to the pre-flow-model harness.
  if (config.contention) {
    std::printf("network contention       : %llu flows (peak %llu "
                "concurrent), wan x%.2f, %d stream%s\n",
                static_cast<unsigned long long>(result.flows_completed),
                static_cast<unsigned long long>(result.peak_active_flows),
                config.wan_bandwidth_scale, config.wan_streams,
                config.wan_streams == 1 ? "" : "s");
  }
  // Printed only under --persistence so the default report stays
  // byte-identical to the pre-DTM harness.
  if (persistent) {
    std::printf("inter-site (WAN) traffic : %s (persistent data, %d "
                "replica%s)\n",
                gc::format_bytes(result.wan_bytes).c_str(), config.replicas,
                config.replicas == 1 ? "" : "s");
  }
  std::printf("\n");

  if (chaos) {
    std::printf("fault plan '%s' (seed %llu):\n", config.fault_plan.c_str(),
                static_cast<unsigned long long>(config.fault_seed));
    std::printf("  messages dropped/duplicated/delayed : %llu / %llu / %llu\n",
                static_cast<unsigned long long>(result.messages_dropped),
                static_cast<unsigned long long>(result.messages_duplicated),
                static_cast<unsigned long long>(result.messages_delayed));
    std::printf("  SED crashes %llu (restarts %llu), LA deaths %llu, "
                "isolations %llu\n",
                static_cast<unsigned long long>(result.sed_crashes),
                static_cast<unsigned long long>(result.sed_restarts),
                static_cast<unsigned long long>(result.la_deaths),
                static_cast<unsigned long long>(result.sed_isolations));
    std::printf("  heartbeat evictions %llu\n",
                static_cast<unsigned long long>(result.heartbeat_evictions));
    std::printf("  science digest %016llx\n\n",
                static_cast<unsigned long long>(result.science_digest));
  }

  std::printf("%-22s %-10s %6s %9s %16s\n", "SED", "site", "power",
              "requests", "busy");
  for (const auto& sed : result.seds) {
    std::printf("%-22s %-10s %6.2f %9llu %16s\n", sed.name.c_str(),
                sed.site.c_str(), sed.machine_power,
                static_cast<unsigned long long>(sed.requests),
                gc::format_duration(sed.busy_seconds).c_str());
  }

  // Latency percentiles (the log-scale curve of Figure 5 in four numbers).
  std::vector<double> latencies;
  for (const auto& record : result.zoom2) {
    // Abandoned attempts of a chaos run never reached the started stage,
    // and a retried call can start executing (first attempt) before its
    // final find completes (later attempt) — both would corrupt the stats.
    if (record.found < 0.0 || record.started < record.found) continue;
    latencies.push_back(record.latency());
  }
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    auto at = [&](double frac) {
      return latencies[static_cast<std::size_t>(
          frac * static_cast<double>(latencies.size() - 1))];
    };
    std::printf("\nlatency (xfer + queue + init): min %s, median %s, "
                "p90 %s, max %s\n",
                gc::format_duration(at(0.0)).c_str(),
                gc::format_duration(at(0.5)).c_str(),
                gc::format_duration(at(0.9)).c_str(),
                gc::format_duration(at(1.0)).c_str());
  }
  return 0;
}
